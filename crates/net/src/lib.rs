//! Networking substrate of the AEON reproduction.
//!
//! The paper's prototype runs on Mace (a C++ networking / event framework).
//! Here the substrate is a small layered stack:
//!
//! * [`Transport`] — how typed messages physically move between servers.
//!   Two implementations ship with the crate: [`ChannelTransport`] (the
//!   original in-process crossbeam-channel delivery used by the concurrent
//!   runtime and all single-process clusters) and [`TcpTransport`]
//!   (length-prefixed frames over `std::net` sockets with per-peer writer
//!   threads and reconnect-on-send, used when a cluster runs as N real OS
//!   processes via the `aeon-node` binary).
//! * [`Network`] — the façade every component talks to.  It layers fault
//!   injection (administratively severed links) and [`NetworkStats`]
//!   (message and byte counters) on top of whichever transport it wraps,
//!   so the semantics above the wire are identical for channels and
//!   sockets.
//! * [`Endpoint`] — a server's attachment point: `send`, blocking /
//!   timed / non-blocking receive.
//!
//! Messages that cross a byte-oriented transport implement [`WireMessage`]
//! (`aeon-cluster` provides the implementation for its message enum on top
//! of `aeon_types::codec`).
//!
//! Latency is *not* simulated here (the concurrent runtime is about
//! correctness and real parallelism); the discrete-event simulator in
//! `aeon-sim` models latency explicitly with the [`LatencyModel`] defined in
//! this crate.
//!
//! # Examples
//!
//! In-process network (the default transport):
//!
//! ```
//! use aeon_net::Network;
//! use aeon_types::ServerId;
//!
//! let network: Network<String> = Network::new();
//! let a = network.register(ServerId::new(0));
//! let b = network.register(ServerId::new(1));
//! a.send(ServerId::new(1), "hello".to_string()).unwrap();
//! assert_eq!(b.recv().unwrap(), "hello");
//! ```

pub mod latency;
pub mod stats;
pub mod transport;

pub use latency::LatencyModel;
pub use stats::NetworkStats;
pub use transport::{
    ChannelTransport, MessageSizer, SendReceipt, TcpTransport, TcpTransportConfig, Transport,
    WireMessage,
};

use aeon_types::{AeonError, Result, ServerId};
use crossbeam::channel::{self, Receiver, TryRecvError};
use parking_lot::RwLock;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Shared state of a network: the transport plus the fault-injection and
/// statistics layers common to every transport.
#[derive(Debug)]
struct Shared<M: Send + 'static> {
    transport: Arc<dyn Transport<M>>,
    /// Links administratively taken down (fault injection); messages from
    /// `from` to `to` are silently dropped when `(from, to)` is present.
    severed: RwLock<std::collections::HashSet<(ServerId, ServerId)>>,
    stats: Arc<NetworkStats>,
}

/// A network connecting (possibly simulated) servers over a pluggable
/// [`Transport`].
///
/// Cloning the network is cheap: all clones share the same transport,
/// fault-injection table, and statistics.
#[derive(Debug)]
pub struct Network<M: Send + 'static> {
    shared: Arc<Shared<M>>,
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send + 'static> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> Network<M> {
    /// Creates an empty in-process network (a [`ChannelTransport`] with no
    /// registered servers and no byte accounting).
    pub fn new() -> Self {
        Self::with_transport(Arc::new(ChannelTransport::new()))
    }

    /// Creates a network over an arbitrary transport with fresh statistics.
    pub fn with_transport(transport: Arc<dyn Transport<M>>) -> Self {
        Self::with_transport_and_stats(transport, Arc::new(NetworkStats::default()))
    }

    /// Creates a network over `transport` that accumulates into an existing
    /// stats object — lets several per-process networks (e.g. a loopback
    /// TCP cluster with one transport per node) report as one fabric.
    pub fn with_transport_and_stats(
        transport: Arc<dyn Transport<M>>,
        stats: Arc<NetworkStats>,
    ) -> Self {
        transport.bind_stats(Arc::clone(&stats));
        Self {
            shared: Arc::new(Shared {
                transport,
                severed: RwLock::new(std::collections::HashSet::new()),
                stats,
            }),
        }
    }

    /// Registers a server and returns its endpoint.  Re-registering an id
    /// replaces the previous inbox (used when a crashed server restarts).
    pub fn register(&self, id: ServerId) -> Endpoint<M> {
        let rx = self.shared.transport.register(id);
        Endpoint {
            id,
            network: self.clone(),
            rx,
        }
    }

    /// Removes a server from the routing table; subsequent sends to it fail
    /// with [`AeonError::ServerNotFound`].  Any severed-link entries that
    /// mention the server are cleaned up too, so a later re-registration
    /// (a restarted server) does not inherit stale fault injection.
    pub fn deregister(&self, id: ServerId) {
        self.shared.transport.deregister(id);
        self.shared
            .severed
            .write()
            .retain(|(from, to)| *from != id && *to != id);
    }

    /// Returns the ids of all currently reachable servers.
    pub fn servers(&self) -> Vec<ServerId> {
        self.shared.transport.servers()
    }

    /// Sends `message` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] when the destination is not
    /// registered (or has been deregistered).
    pub fn send_from(&self, from: ServerId, to: ServerId, message: M) -> Result<()> {
        if self.shared.severed.read().contains(&(from, to)) {
            // Fault injection: the message is lost on the wire.
            self.shared.stats.record_dropped();
            return Ok(());
        }
        let receipt = self.shared.transport.send(from, to, message)?;
        self.shared.stats.record_sent(from == to, receipt.bytes);
        if receipt.delivered_locally {
            self.shared.stats.record_received(receipt.bytes);
        }
        Ok(())
    }

    /// Severs the directed link `from -> to`; messages are silently dropped
    /// until [`Network::heal_link`] is called.
    pub fn sever_link(&self, from: ServerId, to: ServerId) {
        self.shared.severed.write().insert((from, to));
    }

    /// Restores a previously severed link.
    pub fn heal_link(&self, from: ServerId, to: ServerId) {
        self.shared.severed.write().remove(&(from, to));
    }

    /// Traffic statistics accumulated since creation.
    pub fn stats(&self) -> &NetworkStats {
        &self.shared.stats
    }

    /// A shareable handle to the statistics (see
    /// [`Network::with_transport_and_stats`]).
    pub fn stats_handle(&self) -> Arc<NetworkStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Teaches a socket transport about a (new) remote peer; a no-op on
    /// in-process transports.
    pub fn add_peer(&self, id: ServerId, addr: SocketAddr) {
        self.shared.transport.add_peer(id, addr);
    }

    /// The local socket address the transport listens on, when it has one.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.shared.transport.local_addr()
    }

    /// Asks the transport's background threads to wind down (no-op for
    /// in-process transports).
    pub fn shutdown_transport(&self) {
        self.shared.transport.shutdown();
    }
}

/// A server's attachment point to the [`Network`].
#[derive(Debug)]
pub struct Endpoint<M: Send + 'static> {
    id: ServerId,
    network: Network<M>,
    rx: Receiver<M>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// The server id this endpoint was registered under.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Sends a message to another server (or to itself).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] when the destination is not
    /// registered.
    pub fn send(&self, to: ServerId, message: M) -> Result<()> {
        self.network.send_from(self.id, to, message)
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::RuntimeShutdown`] when every sender has been
    /// dropped (the network was torn down).
    pub fn recv(&self) -> Result<M> {
        self.rx.recv().map_err(|_| AeonError::RuntimeShutdown)
    }

    /// Waits up to `timeout` for a message.
    ///
    /// Returns `Ok(None)` on timeout so callers can interleave periodic
    /// work (e.g. the server scheduler loop).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(channel::RecvTimeoutError::Disconnected) => Err(AeonError::RuntimeShutdown),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<M>> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(AeonError::RuntimeShutdown),
        }
    }

    /// A handle to the network this endpoint belongs to.
    pub fn network(&self) -> &Network<M> {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srv(n: u32) -> ServerId {
        ServerId::new(n)
    }

    #[test]
    fn point_to_point_delivery() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let b = net.register(srv(1));
        a.send(srv(1), 42).unwrap();
        a.send(srv(1), 43).unwrap();
        assert_eq!(b.recv().unwrap(), 42);
        assert_eq!(b.recv().unwrap(), 43);
    }

    #[test]
    fn send_to_unknown_server_fails() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        assert!(matches!(
            a.send(srv(9), 1),
            Err(AeonError::ServerNotFound(_))
        ));
    }

    #[test]
    fn self_send_is_local() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        a.send(srv(0), 7).unwrap();
        assert_eq!(a.recv().unwrap(), 7);
        assert_eq!(net.stats().local_messages(), 1);
        assert_eq!(net.stats().remote_messages(), 0);
    }

    #[test]
    fn deregistered_server_is_unreachable() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let _b = net.register(srv(1));
        net.deregister(srv(1));
        assert!(a.send(srv(1), 1).is_err());
        assert_eq!(net.servers(), vec![srv(0)]);
    }

    #[test]
    fn severed_links_drop_messages_and_heal() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let b = net.register(srv(1));
        net.sever_link(srv(0), srv(1));
        a.send(srv(1), 1).unwrap();
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(net.stats().dropped_messages(), 1);
        net.heal_link(srv(0), srv(1));
        a.send(srv(1), 2).unwrap();
        assert_eq!(b.recv().unwrap(), 2);
    }

    #[test]
    fn deregister_clears_stale_severed_links() {
        // Regression test: a restarted (re-registered) server id must not
        // inherit fault injection that targeted its previous incarnation.
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let _b = net.register(srv(1));
        net.sever_link(srv(0), srv(1));
        net.sever_link(srv(1), srv(0));
        net.sever_link(srv(0), srv(2));
        net.deregister(srv(1));
        let b = net.register(srv(1));
        a.send(srv(1), 5).unwrap();
        assert_eq!(b.recv().unwrap(), 5);
        b.send(srv(0), 6).unwrap();
        assert_eq!(a.recv().unwrap(), 6);
        assert_eq!(net.stats().dropped_messages(), 0);
        // Links not involving the deregistered id are untouched.
        assert!(net.shared.severed.read().contains(&(srv(0), srv(2))));
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn works_across_threads() {
        let net: Network<u64> = Network::new();
        let receiver = net.register(srv(0));
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let ep = net.register(srv(t));
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    ep.send(srv(0), u64::from(t) * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut received = Vec::new();
        while let Some(m) = receiver.try_recv().unwrap() {
            received.push(m);
        }
        assert_eq!(received.len(), 400);
        assert_eq!(net.stats().remote_messages(), 400);
    }

    #[test]
    fn channel_sizer_feeds_byte_counters() {
        let transport: Arc<dyn Transport<Vec<u8>>> =
            Arc::new(ChannelTransport::with_sizer(Arc::new(|m: &Vec<u8>| {
                m.len() as u64
            })));
        let net = Network::with_transport(transport);
        let a = net.register(srv(0));
        let b = net.register(srv(1));
        a.send(srv(1), vec![0u8; 10]).unwrap();
        a.send(srv(1), vec![0u8; 32]).unwrap();
        assert_eq!(b.recv().unwrap().len(), 10);
        assert_eq!(net.stats().bytes_sent(), 42);
        assert_eq!(net.stats().bytes_received(), 42);
    }

    mod tcp {
        use super::*;
        use std::net::SocketAddr;

        /// A trivial wire message for transport tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct Ping(u64, Vec<u8>);

        impl WireMessage for Ping {
            fn encode_wire(&self) -> Result<Vec<u8>> {
                let mut out = self.0.to_be_bytes().to_vec();
                out.extend_from_slice(&self.1);
                Ok(out)
            }

            fn decode_wire(bytes: &[u8]) -> Result<Self> {
                if bytes.len() < 8 {
                    return Err(AeonError::Codec("short ping".into()));
                }
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&bytes[..8]);
                Ok(Ping(u64::from_be_bytes(raw), bytes[8..].to_vec()))
            }
        }

        fn loopback() -> SocketAddr {
            "127.0.0.1:0".parse().unwrap()
        }

        fn tcp_network() -> Network<Ping> {
            let transport: Arc<dyn Transport<Ping>> =
                Arc::new(TcpTransport::bind(TcpTransportConfig::new(loopback())).unwrap());
            Network::with_transport(transport)
        }

        #[test]
        fn frames_cross_a_real_socket() {
            let net_a = tcp_network();
            let net_b = tcp_network();
            net_a.add_peer(srv(1), net_b.local_addr().unwrap());
            net_b.add_peer(srv(0), net_a.local_addr().unwrap());
            let a = net_a.register(srv(0));
            let b = net_b.register(srv(1));

            a.send(srv(1), Ping(7, vec![1, 2, 3])).unwrap();
            assert_eq!(b.recv().unwrap(), Ping(7, vec![1, 2, 3]));
            b.send(srv(0), Ping(8, Vec::new())).unwrap();
            assert_eq!(a.recv().unwrap(), Ping(8, Vec::new()));

            // Exact frame accounting: prefix(4) + from(4) + to(4) + payload.
            assert_eq!(net_a.stats().bytes_sent(), (12 + 8 + 3) as u64);
            assert_eq!(net_b.stats().bytes_received(), (12 + 8 + 3) as u64);

            net_a.shutdown_transport();
            net_b.shutdown_transport();
        }

        #[test]
        fn send_before_peer_listens_retries() {
            // Reserve an address, drop the listener, send (the writer will
            // retry), then bring the real transport up on that address.
            let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = placeholder.local_addr().unwrap();
            drop(placeholder);

            let net_a = tcp_network();
            net_a.add_peer(srv(1), addr);
            let a = net_a.register(srv(0));
            a.send(srv(1), Ping(1, vec![9])).unwrap();

            let mut config = TcpTransportConfig::new(addr);
            config.connect_retries = 4;
            let transport_b: Arc<dyn Transport<Ping>> =
                Arc::new(TcpTransport::bind(config).unwrap());
            let net_b = Network::with_transport(transport_b);
            let b = net_b.register(srv(1));
            assert_eq!(
                b.recv_timeout(Duration::from_secs(15)).unwrap(),
                Some(Ping(1, vec![9]))
            );
            net_a.shutdown_transport();
            net_b.shutdown_transport();
        }

        #[test]
        fn self_send_short_circuits_but_counts_bytes() {
            let net = tcp_network();
            let a = net.register(srv(0));
            a.send(srv(0), Ping(3, vec![0; 4])).unwrap();
            assert_eq!(a.recv().unwrap(), Ping(3, vec![0; 4]));
            assert_eq!(net.stats().local_messages(), 1);
            assert_eq!(net.stats().bytes_sent(), (12 + 8 + 4) as u64);
            assert_eq!(net.stats().bytes_received(), (12 + 8 + 4) as u64);
            net.shutdown_transport();
        }

        #[test]
        fn full_send_queue_is_reported_not_silent() {
            // Regression test: a full bounded send queue used to block the
            // caller (and, once the writer retired, drop frames with no
            // trace).  Point the peer at a refusing port so the writer sits
            // in connect-with-retry without draining its queue, then
            // overflow a 1-slot queue.
            let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let dead_addr = placeholder.local_addr().unwrap();
            drop(placeholder);

            let mut config = TcpTransportConfig::new(loopback());
            config.send_queue = 1;
            config.connect_retries = 1000;
            config.retry_delay = Duration::from_millis(50);
            let transport: Arc<dyn Transport<Ping>> = Arc::new(TcpTransport::bind(config).unwrap());
            let net = Network::with_transport(transport);
            net.add_peer(srv(1), dead_addr);
            let a = net.register(srv(0));

            // First frame occupies the only queue slot (the writer cannot
            // drain it while the connection is refused).
            a.send(srv(1), Ping(1, Vec::new())).unwrap();
            let err = a.send(srv(1), Ping(2, Vec::new())).unwrap_err();
            assert_eq!(err, AeonError::SendQueueFull { peer: srv(1) });
            assert!(err.is_transient(), "queue-full is retryable backpressure");
            assert_eq!(net.stats().frames_dropped(), 1);
            net.shutdown_transport();
        }

        #[test]
        fn unknown_peer_is_server_not_found() {
            let net = tcp_network();
            let a = net.register(srv(0));
            assert!(matches!(
                a.send(srv(9), Ping(0, Vec::new())),
                Err(AeonError::ServerNotFound(_))
            ));
            net.shutdown_transport();
        }
    }
}
