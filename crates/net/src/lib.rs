//! Networking substrate of the AEON reproduction.
//!
//! The paper's prototype runs on Mace (a C++ networking / event framework).
//! Here the substrate is an in-process message-passing layer built on
//! crossbeam channels: each simulated *server* registers an [`Endpoint`]
//! with the [`Network`] and exchanges typed messages with other servers.
//! The layer supports fault injection (dropping links) and collects traffic
//! statistics, which the benchmark harness uses to report message counts.
//!
//! Latency is *not* simulated here (the concurrent runtime is about
//! correctness and real parallelism); the discrete-event simulator in
//! `aeon-sim` models latency explicitly with the [`LatencyModel`] defined in
//! this crate.
//!
//! # Examples
//!
//! ```
//! use aeon_net::Network;
//! use aeon_types::ServerId;
//!
//! let network: Network<String> = Network::new();
//! let a = network.register(ServerId::new(0));
//! let b = network.register(ServerId::new(1));
//! a.send(ServerId::new(1), "hello".to_string()).unwrap();
//! assert_eq!(b.recv().unwrap(), "hello");
//! ```

pub mod latency;
pub mod stats;

pub use latency::LatencyModel;
pub use stats::NetworkStats;

use aeon_types::{AeonError, Result, ServerId};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Shared state of the in-process network.
#[derive(Debug)]
struct Shared<M> {
    /// Delivery channels per registered server.
    inboxes: RwLock<HashMap<ServerId, Sender<M>>>,
    /// Links administratively taken down (fault injection); messages from
    /// `from` to `to` are silently dropped when `(from, to)` is present.
    severed: RwLock<std::collections::HashSet<(ServerId, ServerId)>>,
    stats: NetworkStats,
}

/// An in-process, channel-based network connecting simulated servers.
///
/// Cloning the network is cheap: all clones share the same routing table and
/// statistics.
#[derive(Debug)]
pub struct Network<M> {
    shared: Arc<Shared<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send + 'static> Default for Network<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> Network<M> {
    /// Creates an empty network with no registered servers.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                inboxes: RwLock::new(HashMap::new()),
                severed: RwLock::new(std::collections::HashSet::new()),
                stats: NetworkStats::default(),
            }),
        }
    }

    /// Registers a server and returns its endpoint.  Re-registering an id
    /// replaces the previous inbox (used when a crashed server restarts).
    pub fn register(&self, id: ServerId) -> Endpoint<M> {
        let (tx, rx) = channel::unbounded();
        self.shared.inboxes.write().insert(id, tx);
        Endpoint {
            id,
            network: self.clone(),
            rx,
        }
    }

    /// Removes a server from the routing table; subsequent sends to it fail
    /// with [`AeonError::ServerNotFound`].
    pub fn deregister(&self, id: ServerId) {
        self.shared.inboxes.write().remove(&id);
    }

    /// Returns the ids of all currently registered servers.
    pub fn servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.shared.inboxes.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Sends `message` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] when the destination is not
    /// registered (or has been deregistered).
    pub fn send_from(&self, from: ServerId, to: ServerId, message: M) -> Result<()> {
        if self.shared.severed.read().contains(&(from, to)) {
            // Fault injection: the message is lost on the wire.
            self.shared.stats.record_dropped();
            return Ok(());
        }
        let inboxes = self.shared.inboxes.read();
        let tx = inboxes.get(&to).ok_or(AeonError::ServerNotFound(to))?;
        tx.send(message)
            .map_err(|_| AeonError::ServerNotFound(to))?;
        self.shared.stats.record_sent(from == to);
        Ok(())
    }

    /// Severs the directed link `from -> to`; messages are silently dropped
    /// until [`Network::heal_link`] is called.
    pub fn sever_link(&self, from: ServerId, to: ServerId) {
        self.shared.severed.write().insert((from, to));
    }

    /// Restores a previously severed link.
    pub fn heal_link(&self, from: ServerId, to: ServerId) {
        self.shared.severed.write().remove(&(from, to));
    }

    /// Traffic statistics accumulated since creation.
    pub fn stats(&self) -> &NetworkStats {
        &self.shared.stats
    }
}

/// A server's attachment point to the [`Network`].
#[derive(Debug)]
pub struct Endpoint<M> {
    id: ServerId,
    network: Network<M>,
    rx: Receiver<M>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// The server id this endpoint was registered under.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Sends a message to another server (or to itself).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] when the destination is not
    /// registered.
    pub fn send(&self, to: ServerId, message: M) -> Result<()> {
        self.network.send_from(self.id, to, message)
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::RuntimeShutdown`] when every sender has been
    /// dropped (the network was torn down).
    pub fn recv(&self) -> Result<M> {
        self.rx.recv().map_err(|_| AeonError::RuntimeShutdown)
    }

    /// Waits up to `timeout` for a message.
    ///
    /// Returns `Ok(None)` on timeout so callers can interleave periodic
    /// work (e.g. the server scheduler loop).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(Some(m)),
            Err(channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(channel::RecvTimeoutError::Disconnected) => Err(AeonError::RuntimeShutdown),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<M>> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(AeonError::RuntimeShutdown),
        }
    }

    /// A handle to the network this endpoint belongs to.
    pub fn network(&self) -> &Network<M> {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srv(n: u32) -> ServerId {
        ServerId::new(n)
    }

    #[test]
    fn point_to_point_delivery() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let b = net.register(srv(1));
        a.send(srv(1), 42).unwrap();
        a.send(srv(1), 43).unwrap();
        assert_eq!(b.recv().unwrap(), 42);
        assert_eq!(b.recv().unwrap(), 43);
    }

    #[test]
    fn send_to_unknown_server_fails() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        assert!(matches!(
            a.send(srv(9), 1),
            Err(AeonError::ServerNotFound(_))
        ));
    }

    #[test]
    fn self_send_is_local() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        a.send(srv(0), 7).unwrap();
        assert_eq!(a.recv().unwrap(), 7);
        assert_eq!(net.stats().local_messages(), 1);
        assert_eq!(net.stats().remote_messages(), 0);
    }

    #[test]
    fn deregistered_server_is_unreachable() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let _b = net.register(srv(1));
        net.deregister(srv(1));
        assert!(a.send(srv(1), 1).is_err());
        assert_eq!(net.servers(), vec![srv(0)]);
    }

    #[test]
    fn severed_links_drop_messages_and_heal() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        let b = net.register(srv(1));
        net.sever_link(srv(0), srv(1));
        a.send(srv(1), 1).unwrap();
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(net.stats().dropped_messages(), 1);
        net.heal_link(srv(0), srv(1));
        a.send(srv(1), 2).unwrap();
        assert_eq!(b.recv().unwrap(), 2);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let net: Network<u32> = Network::new();
        let a = net.register(srv(0));
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn works_across_threads() {
        let net: Network<u64> = Network::new();
        let receiver = net.register(srv(0));
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let ep = net.register(srv(t));
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    ep.send(srv(0), u64::from(t) * 1000 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut received = Vec::new();
        while let Some(m) = receiver.try_recv().unwrap() {
            received.push(m);
        }
        assert_eq!(received.len(), 400);
        assert_eq!(net.stats().remote_messages(), 400);
    }
}
