//! Pluggable message transports underneath [`Network`](crate::Network).
//!
//! The [`Transport`] trait abstracts how a typed message travels from one
//! server to another.  Two implementations ship with the crate:
//!
//! * [`ChannelTransport`] — the original in-process transport: one crossbeam
//!   channel per registered server, zero-copy delivery.  Used by the
//!   concurrent runtime, the single-process cluster, and every unit test.
//! * [`TcpTransport`] — a real socket transport over `std::net`:
//!   length-prefixed frames, an acceptor/reader loop per process, per-peer
//!   writer threads, and reconnect-on-send with bounded retry.  Used when a
//!   cluster runs as N OS processes (`aeon-node`).
//!
//! [`Network`](crate::Network) layers fault injection (severed links) and
//! [`NetworkStats`](crate::NetworkStats) on top, so both transports share
//! identical semantics for everything above the wire.

mod channel;
mod tcp;

pub use channel::{ChannelTransport, MessageSizer};
pub use tcp::{TcpTransport, TcpTransportConfig};

use crate::stats::NetworkStats;
use aeon_types::{Result, ServerId};
use crossbeam::channel::Receiver;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

/// Outcome of a successful [`Transport::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendReceipt {
    /// Encoded size of the message on the wire (0 when the transport has no
    /// codec, e.g. a channel transport without a sizer).
    pub bytes: u64,
    /// `true` when the message was handed to a local inbox synchronously
    /// (channel delivery, or a TCP self-send short-circuit).  The caller
    /// records received-bytes immediately in that case; otherwise the
    /// receiving process's reader loop records them.
    pub delivered_locally: bool,
}

/// How messages move between servers.
///
/// Implementations are shared behind `Arc<dyn Transport<M>>` by every clone
/// of a [`Network`](crate::Network), so all methods take `&self` and must be
/// thread-safe.
pub trait Transport<M: Send + 'static>: Send + Sync + fmt::Debug {
    /// Registers a local inbox for `id` and returns its receiving half.
    /// Re-registering an id replaces the previous inbox (used when a
    /// crashed server restarts).
    fn register(&self, id: ServerId) -> Receiver<M>;

    /// Removes the local inbox for `id`; subsequent sends to it fail with
    /// `ServerNotFound` (unless the id is a known remote peer).
    fn deregister(&self, id: ServerId);

    /// Delivers `message` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`](aeon_types::AeonError) when the
    /// destination is neither locally registered nor a known peer.
    fn send(&self, from: ServerId, to: ServerId, message: M) -> Result<SendReceipt>;

    /// The ids this transport can currently deliver to (locally registered
    /// inboxes plus, for socket transports, known remote peers), sorted.
    fn servers(&self) -> Vec<ServerId>;

    /// Gives the transport a stats sink so asynchronous receive paths (TCP
    /// reader threads) can record received bytes.  Default: no-op.
    fn bind_stats(&self, _stats: Arc<NetworkStats>) {}

    /// Teaches a socket transport about a (new) remote peer.  Default:
    /// no-op for in-process transports.
    fn add_peer(&self, _id: ServerId, _addr: SocketAddr) {}

    /// The local socket address the transport listens on, when it has one.
    fn local_addr(&self) -> Option<SocketAddr> {
        None
    }

    /// Asks background threads (acceptors, readers, writers) to wind down.
    /// Default: no-op.
    fn shutdown(&self) {}
}

/// A message type that can cross a byte-oriented transport.
///
/// Implemented by `aeon-cluster` for `ClusterMessage` on top of
/// `aeon_types::codec`; any transport generic over `M: WireMessage` (such
/// as [`TcpTransport`]) uses it to frame and recover messages.
pub trait WireMessage: Send + Sized + 'static {
    /// Encodes `self` into a self-contained byte payload.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Codec`](aeon_types::AeonError) when the message
    /// cannot be represented on the wire.
    fn encode_wire(&self) -> Result<Vec<u8>>;

    /// Decodes a payload previously produced by [`WireMessage::encode_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Codec`](aeon_types::AeonError) on malformed
    /// input.
    fn decode_wire(bytes: &[u8]) -> Result<Self>;
}
