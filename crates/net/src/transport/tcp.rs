//! A real socket transport over `std::net`.
//!
//! ## Wire format
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [u32 frame_len][u32 from][u32 to][payload = M::encode_wire()]
//! ```
//!
//! `frame_len` counts the bytes *after* the prefix (8 + payload length).
//! All integers are big-endian.
//!
//! ## Threads
//!
//! * One **acceptor** thread per transport polls the listener and spawns a
//!   **reader** thread per inbound connection.  Readers reassemble frames
//!   from the byte stream, decode the payload, and deliver it to the
//!   locally registered inbox named by `to` (frames for unknown ids are
//!   dropped — the peer map may be ahead of local registration during
//!   elasticity).
//! * One **writer** thread per remote peer owns the outbound connection.
//!   [`TcpTransport::send`] enqueues encoded frames on a bounded channel;
//!   the writer connects lazily with bounded retry (absorbing process
//!   start-up races), then streams frames.  On connection loss the writer
//!   retires itself; the next send spawns a fresh writer, giving
//!   reconnect-on-send semantics with bounded retry per attempt.
//!
//! Self-sends (a server messaging an id registered in the same process)
//! short-circuit into the inbox but still pay for encoding, so byte
//! counters remain honest.

use super::{SendReceipt, Transport, WireMessage};
use crate::stats::NetworkStats;
use aeon_types::{AeonError, Result, ServerId};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Upper bound on a single frame; anything larger indicates a corrupt or
/// hostile stream and kills the connection.
const MAX_FRAME: usize = 64 * 1024 * 1024;

/// How often blocked reader/acceptor threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// Tuning knobs for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpTransportConfig {
    /// Address to listen on; use port 0 to let the OS pick (loopback
    /// clusters discover each other via [`Transport::local_addr`]).
    pub listen: SocketAddr,
    /// Initial peer map (server id → address).  Peers can also be added
    /// later with [`Transport::add_peer`].
    pub peers: HashMap<ServerId, SocketAddr>,
    /// Connection attempts per writer before it gives up (the *bounded*
    /// part of reconnect-on-send).
    pub connect_retries: u32,
    /// Delay between connection attempts.
    pub retry_delay: Duration,
    /// Outbound frames buffered per peer before senders block.
    pub send_queue: usize,
}

impl TcpTransportConfig {
    /// A config listening on `listen` with no peers and default retry
    /// behaviour (40 attempts × 250 ms ≈ 10 s of patience per writer).
    pub fn new(listen: SocketAddr) -> Self {
        Self {
            listen,
            peers: HashMap::new(),
            connect_retries: 40,
            retry_delay: Duration::from_millis(250),
            send_queue: 1024,
        }
    }

    /// Adds an initial peer.
    pub fn peer(mut self, id: ServerId, addr: SocketAddr) -> Self {
        self.peers.insert(id, addr);
        self
    }
}

struct TcpShared<M> {
    local_addr: SocketAddr,
    inboxes: RwLock<HashMap<ServerId, Sender<M>>>,
    peers: RwLock<HashMap<ServerId, SocketAddr>>,
    /// Outbound frame queues, one writer thread per live entry.
    writers: Mutex<HashMap<ServerId, Sender<Vec<u8>>>>,
    stats: RwLock<Option<Arc<NetworkStats>>>,
    running: AtomicBool,
    connect_retries: u32,
    retry_delay: Duration,
    send_queue: usize,
}

impl<M> TcpShared<M> {
    fn record_frame_dropped(&self) {
        if let Some(stats) = self.stats.read().as_ref() {
            stats.record_frame_dropped();
        }
    }
}

/// TCP implementation of [`Transport`]; see the module docs for the wire
/// format and threading model.
pub struct TcpTransport<M: WireMessage> {
    shared: Arc<TcpShared<M>>,
}

impl<M: WireMessage> fmt::Debug for TcpTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local_addr", &self.shared.local_addr)
            .field("peers", &self.shared.peers.read().len())
            .finish()
    }
}

impl<M: WireMessage> TcpTransport<M> {
    /// Binds the listener and starts the acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Config`] when the listen address cannot be
    /// bound.
    pub fn bind(config: TcpTransportConfig) -> Result<Self> {
        let listener = TcpListener::bind(config.listen)
            .map_err(|e| AeonError::Config(format!("bind {}: {e}", config.listen)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| AeonError::Config(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AeonError::Config(format!("set_nonblocking: {e}")))?;
        let shared = Arc::new(TcpShared {
            local_addr,
            inboxes: RwLock::new(HashMap::new()),
            peers: RwLock::new(config.peers),
            writers: Mutex::new(HashMap::new()),
            stats: RwLock::new(None),
            running: AtomicBool::new(true),
            connect_retries: config.connect_retries,
            retry_delay: config.retry_delay,
            send_queue: config.send_queue,
        });
        let accept_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name(format!("aeon-tcp-accept-{local_addr}"))
            .spawn(move || accept_loop(accept_shared, listener))
            .map_err(|e| AeonError::Config(format!("spawn acceptor: {e}")))?;
        Ok(Self { shared })
    }

    /// Encodes one message into a full frame (prefix included).
    fn frame(from: ServerId, to: ServerId, message: &M) -> Result<Vec<u8>> {
        let payload = message.encode_wire()?;
        let body_len = payload.len() + 8;
        let mut frame = Vec::with_capacity(body_len + 4);
        frame.extend_from_slice(&(body_len as u32).to_be_bytes());
        frame.extend_from_slice(&from.raw().to_be_bytes());
        frame.extend_from_slice(&to.raw().to_be_bytes());
        frame.extend_from_slice(&payload);
        Ok(frame)
    }

    /// Hands a frame to the peer's writer, spawning one when missing or
    /// when the previous writer retired after losing its connection.
    ///
    /// A full send queue is *not* silent: the frame is counted in
    /// `frames_dropped` and the caller gets [`AeonError::SendQueueFull`],
    /// a transient error distinguishable from a dead peer
    /// ([`AeonError::ServerNotFound`]) so callers can retry or shed load
    /// instead of misdiagnosing backpressure as peer loss.
    fn enqueue(&self, to: ServerId, addr: SocketAddr, frame: Vec<u8>) -> Result<()> {
        let mut frame = frame;
        for _ in 0..2 {
            let tx = {
                let mut writers = self.shared.writers.lock();
                writers
                    .entry(to)
                    .or_insert_with(|| spawn_writer(Arc::clone(&self.shared), to, addr))
                    .clone()
            };
            match tx.try_send(frame) {
                Ok(()) => return Ok(()),
                Err(channel::TrySendError::Full(_)) => {
                    self.shared.record_frame_dropped();
                    return Err(AeonError::SendQueueFull { peer: to });
                }
                Err(channel::TrySendError::Disconnected(f)) => {
                    // The writer retired (connection lost / gave up);
                    // drop the dead queue and retry with a fresh writer.
                    frame = f;
                    self.shared.writers.lock().remove(&to);
                }
            }
        }
        self.shared.record_frame_dropped();
        Err(AeonError::ServerNotFound(to))
    }
}

impl<M: WireMessage> Transport<M> for TcpTransport<M> {
    fn register(&self, id: ServerId) -> Receiver<M> {
        let (tx, rx) = channel::unbounded();
        self.shared.inboxes.write().insert(id, tx);
        rx
    }

    fn deregister(&self, id: ServerId) {
        self.shared.inboxes.write().remove(&id);
    }

    fn send(&self, from: ServerId, to: ServerId, message: M) -> Result<SendReceipt> {
        let frame = Self::frame(from, to, &message)?;
        let bytes = frame.len() as u64;
        // Self-send (or loopback co-located id): deliver without a socket.
        if let Some(tx) = self.shared.inboxes.read().get(&to) {
            tx.send(message)
                .map_err(|_| AeonError::ServerNotFound(to))?;
            return Ok(SendReceipt {
                bytes,
                delivered_locally: true,
            });
        }
        let addr = self
            .shared
            .peers
            .read()
            .get(&to)
            .copied()
            .ok_or(AeonError::ServerNotFound(to))?;
        self.enqueue(to, addr, frame)?;
        Ok(SendReceipt {
            bytes,
            delivered_locally: false,
        })
    }

    fn servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.shared.inboxes.read().keys().copied().collect();
        ids.extend(self.shared.peers.read().keys().copied());
        ids.sort();
        ids.dedup();
        ids
    }

    fn bind_stats(&self, stats: Arc<NetworkStats>) {
        *self.shared.stats.write() = Some(stats);
    }

    fn add_peer(&self, id: ServerId, addr: SocketAddr) {
        self.shared.peers.write().insert(id, addr);
    }

    fn local_addr(&self) -> Option<SocketAddr> {
        Some(self.shared.local_addr)
    }

    fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Dropping the queues disconnects the writer threads.
        self.shared.writers.lock().clear();
    }
}

fn accept_loop<M: WireMessage>(shared: Arc<TcpShared<M>>, listener: TcpListener) {
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let reader_shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("aeon-tcp-reader".into())
                    .spawn(move || read_loop(reader_shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Reassembles frames from one inbound connection and delivers them.
fn read_loop<M: WireMessage>(shared: Arc<TcpShared<M>>, stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    while shared.running.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if !drain_frames(&shared, &mut buf) {
                    return; // corrupt stream
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Parses and delivers every complete frame in `buf`; returns `false` when
/// the stream is corrupt and the connection should be dropped.
fn drain_frames<M: WireMessage>(shared: &TcpShared<M>, buf: &mut Vec<u8>) -> bool {
    loop {
        if buf.len() < 4 {
            return true;
        }
        let body_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if !(8..=MAX_FRAME).contains(&body_len) {
            return false;
        }
        if buf.len() < 4 + body_len {
            return true;
        }
        let to = ServerId::new(u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]));
        let payload = &buf[12..4 + body_len];
        if let Ok(message) = M::decode_wire(payload) {
            if let Some(stats) = shared.stats.read().as_ref() {
                stats.record_received((4 + body_len) as u64);
            }
            if let Some(tx) = shared.inboxes.read().get(&to) {
                let _ = tx.send(message);
            }
        }
        buf.drain(..4 + body_len);
    }
}

/// Spawns the writer thread for `to` and returns its frame queue.
fn spawn_writer<M: WireMessage>(
    shared: Arc<TcpShared<M>>,
    to: ServerId,
    addr: SocketAddr,
) -> Sender<Vec<u8>> {
    let (tx, rx) = channel::bounded::<Vec<u8>>(shared.send_queue);
    let _ = thread::Builder::new()
        .name(format!("aeon-tcp-writer-{to}"))
        .spawn(move || write_loop(shared, to, addr, rx));
    tx
}

fn write_loop<M: WireMessage>(
    shared: Arc<TcpShared<M>>,
    to: ServerId,
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
) {
    let stream = connect_with_retry(&shared, addr);
    let Some(mut stream) = stream else {
        retire_writer(&shared, to, &rx);
        return;
    };
    let _ = stream.set_nodelay(true);
    while let Ok(frame) = rx.recv() {
        if !shared.running.load(Ordering::SeqCst) {
            return;
        }
        if stream.write_all(&frame).is_err() {
            // One bounded reconnect attempt; on failure retire so the next
            // send spawns a fresh writer.
            match connect_with_retry(&shared, addr) {
                Some(s) => {
                    stream = s;
                    let _ = stream.set_nodelay(true);
                    if stream.write_all(&frame).is_err() {
                        shared.record_frame_dropped();
                        retire_writer(&shared, to, &rx);
                        return;
                    }
                }
                None => {
                    shared.record_frame_dropped();
                    retire_writer(&shared, to, &rx);
                    return;
                }
            }
        }
    }
}

fn connect_with_retry<M: WireMessage>(
    shared: &Arc<TcpShared<M>>,
    addr: SocketAddr,
) -> Option<TcpStream> {
    for attempt in 0..shared.connect_retries {
        if !shared.running.load(Ordering::SeqCst) {
            return None;
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Some(stream),
            Err(_) if attempt + 1 < shared.connect_retries => thread::sleep(shared.retry_delay),
            Err(_) => return None,
        }
    }
    None
}

/// Removes this writer's queue from the routing table and counts every
/// still-buffered frame as dropped (both as a lost message and as a
/// transport-level frame drop).
fn retire_writer<M: WireMessage>(shared: &TcpShared<M>, to: ServerId, rx: &Receiver<Vec<u8>>) {
    shared.writers.lock().remove(&to);
    let stats = shared.stats.read().clone();
    while rx.try_recv().is_ok() {
        if let Some(stats) = stats.as_ref() {
            stats.record_dropped();
            stats.record_frame_dropped();
        }
    }
}
