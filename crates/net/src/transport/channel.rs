//! The original in-process transport: one crossbeam channel per server.

use super::{SendReceipt, Transport};
use aeon_types::{AeonError, Result, ServerId};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Computes the encoded wire size of a message without sending it anywhere;
/// lets the channel transport report honest byte counts for
/// channel-vs-TCP comparisons.
pub type MessageSizer<M> = Arc<dyn Fn(&M) -> u64 + Send + Sync>;

/// In-process, channel-based transport connecting simulated servers.
///
/// Delivery is a synchronous hand-off into the destination's unbounded
/// channel — messages are moved, never serialised.  When a [`MessageSizer`]
/// is configured the transport still *measures* what each message would
/// have cost on the wire, so `NetworkStats` byte counters stay meaningful.
pub struct ChannelTransport<M> {
    inboxes: RwLock<HashMap<ServerId, Sender<M>>>,
    sizer: Option<MessageSizer<M>>,
}

impl<M> fmt::Debug for ChannelTransport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("servers", &self.inboxes.read().len())
            .field("sized", &self.sizer.is_some())
            .finish()
    }
}

impl<M> Default for ChannelTransport<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ChannelTransport<M> {
    /// Creates an empty transport that reports zero bytes per message.
    pub fn new() -> Self {
        Self {
            inboxes: RwLock::new(HashMap::new()),
            sizer: None,
        }
    }

    /// Creates an empty transport that measures each message's encoded
    /// size with `sizer`.
    pub fn with_sizer(sizer: MessageSizer<M>) -> Self {
        Self {
            inboxes: RwLock::new(HashMap::new()),
            sizer: Some(sizer),
        }
    }
}

impl<M: Send + 'static> Transport<M> for ChannelTransport<M> {
    fn register(&self, id: ServerId) -> Receiver<M> {
        let (tx, rx) = channel::unbounded();
        self.inboxes.write().insert(id, tx);
        rx
    }

    fn deregister(&self, id: ServerId) {
        self.inboxes.write().remove(&id);
    }

    fn send(&self, _from: ServerId, to: ServerId, message: M) -> Result<SendReceipt> {
        let bytes = self.sizer.as_ref().map_or(0, |s| s(&message));
        let inboxes = self.inboxes.read();
        let tx = inboxes.get(&to).ok_or(AeonError::ServerNotFound(to))?;
        tx.send(message)
            .map_err(|_| AeonError::ServerNotFound(to))?;
        Ok(SendReceipt {
            bytes,
            delivered_locally: true,
        })
    }

    fn servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.inboxes.read().keys().copied().collect();
        ids.sort();
        ids
    }
}
