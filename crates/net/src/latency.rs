//! Network latency models used by the discrete-event simulator.
//!
//! The evaluation of the paper runs on EC2, where same-rack round trips are
//! a few hundred microseconds.  The simulator draws per-message latencies
//! from one of these models; the defaults in `aeon-sim` are calibrated to
//! the latency floor visible in Figures 5b/6b.

use aeon_types::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution of one-way message latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// No latency at all (useful for unit tests).
    Zero,
    /// A constant latency in microseconds.
    Constant { micros: u64 },
    /// Uniformly distributed latency in `[min_micros, max_micros]`.
    Uniform { min_micros: u64, max_micros: u64 },
    /// A base latency plus an exponentially distributed tail with the given
    /// mean — a decent approximation of datacenter RPC latency.
    BaseplusExp {
        base_micros: u64,
        mean_tail_micros: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~0.3 ms one-way, with a small tail: EC2 same-AZ ballpark.
        LatencyModel::BaseplusExp {
            base_micros: 250,
            mean_tail_micros: 100,
        }
    }
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant { micros } => SimDuration::from_micros(micros),
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => {
                let (lo, hi) = (min_micros.min(max_micros), min_micros.max(max_micros));
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::BaseplusExp {
                base_micros,
                mean_tail_micros,
            } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let tail = -(u.ln()) * mean_tail_micros as f64;
                SimDuration::from_micros(base_micros + tail as u64)
            }
        }
    }

    /// The mean of the distribution (used for capacity planning in the
    /// elasticity policies).
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant { micros } => SimDuration::from_micros(micros),
            LatencyModel::Uniform {
                min_micros,
                max_micros,
            } => SimDuration::from_micros((min_micros + max_micros) / 2),
            LatencyModel::BaseplusExp {
                base_micros,
                mean_tail_micros,
            } => SimDuration::from_micros(base_micros + mean_tail_micros),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_constant_models() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), SimDuration::ZERO);
        assert_eq!(
            LatencyModel::Constant { micros: 500 }.sample(&mut rng),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LatencyModel::Uniform {
            min_micros: 100,
            max_micros: 200,
        };
        for _ in 0..1000 {
            let s = model.sample(&mut rng).as_micros();
            assert!((100..=200).contains(&s));
        }
        assert_eq!(model.mean(), SimDuration::from_micros(150));
    }

    #[test]
    fn base_plus_exp_mean_is_close_to_analytic() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = LatencyModel::BaseplusExp {
            base_micros: 250,
            mean_tail_micros: 100,
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| model.sample(&mut rng).as_micros()).sum();
        let mean = total as f64 / n as f64;
        let analytic = model.mean().as_micros() as f64;
        assert!(
            (mean - analytic).abs() / analytic < 0.05,
            "mean {mean} vs analytic {analytic}"
        );
        // Samples never go below the base.
        for _ in 0..100 {
            assert!(model.sample(&mut rng).as_micros() >= 250);
        }
    }

    #[test]
    fn default_model_is_reasonable() {
        let d = LatencyModel::default();
        assert!(d.mean().as_micros() > 0);
    }
}
