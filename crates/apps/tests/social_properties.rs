//! Property tests for the social workload generators.
//!
//! Two generator surfaces get the adversarial treatment: the Zipf sampler
//! (distribution sanity across the whole exponent range, including the
//! degenerate `s → 0` uniform case) and the seeded graph generator (every
//! plan must be a well-formed ownership DAG that deploys cleanly under
//! `AnalysisMode::Enforce` — the AEON001–005 diagnostics never fire, for
//! any seed).

use aeon_analyzer::{analyze, AnalysisMode};
use aeon_apps::social::{
    deploy_social_plan, generate_plan, social_class_graph, SocialConfig, ZipfSampler,
};
use aeon_sim::SimDeployment;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn social_class_graph_is_statically_clean() {
    let report = analyze(&social_class_graph());
    assert!(report.is_clean(), "{}", report.render_text());
}

proptest! {
    /// Zipf rank frequencies are monotone non-increasing, normalised, and
    /// well defined over the whole exponent range — including `s = 0`
    /// (uniform) and `s ≥ 1` (heavy skew).  No division by zero, no NaN.
    #[test]
    fn zipf_pmf_is_monotone_and_normalised(n in 1usize..200, s in 0.0f64..3.0) {
        let zipf = ZipfSampler::new(n, s).unwrap();
        prop_assert_eq!(zipf.len(), n);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for rank in 0..n {
            let p = zipf.pmf(rank);
            prop_assert!(p.is_finite() && p > 0.0, "pmf({rank}) = {p}");
            prop_assert!(p <= prev + 1e-12, "pmf must not increase with rank");
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }

    /// Samples always land in `[0, n)`, for any uniform draw including the
    /// boundaries.
    #[test]
    fn zipf_samples_stay_in_range(n in 1usize..100, s in 0.0f64..3.0, u in 0.0f64..1.0) {
        let zipf = ZipfSampler::new(n, s).unwrap();
        prop_assert!(zipf.sample_with(u) < n);
        prop_assert!(zipf.sample_with(0.0) < n);
        prop_assert!(zipf.sample_with(0.999_999_999) < n);
    }

    /// At `s = 0` every rank is equally likely.
    #[test]
    fn zipf_at_zero_is_uniform(n in 1usize..100) {
        let zipf = ZipfSampler::new(n, 0.0).unwrap();
        let uniform = 1.0 / n as f64;
        for rank in 0..n {
            prop_assert!((zipf.pmf(rank) - uniform).abs() < 1e-9);
        }
    }

    /// Every seeded plan is well formed: users sit in their declared
    /// region, invite edges always point from an earlier user to a later
    /// one (the DAG guarantee), and follow edges never self-reference or
    /// duplicate.
    #[test]
    fn generated_plans_are_well_formed(
        regions in 1usize..4,
        users in 1usize..48,
        chain_depth in 1usize..8,
        follows_per_user in 0usize..6,
        zipf_s in 0.0f64..2.5,
        seed in any::<u64>(),
    ) {
        let config = SocialConfig {
            regions,
            users,
            chain_depth,
            follows_per_user,
            zipf_s,
            feed_capacity: 4,
            seed,
        };
        let plan = generate_plan(&config);
        prop_assert_eq!(plan.region_of.len(), users);
        prop_assert_eq!(plan.inviter_of.len(), users);
        prop_assert_eq!(plan.follows.len(), users);
        for user in 0..users {
            prop_assert!((plan.region_of[user] as usize) < regions);
            if let Some(inviter) = plan.inviter_of[user] {
                prop_assert!(
                    (inviter as usize) < user,
                    "invite edges must point forward: {inviter} -> {user}"
                );
                prop_assert_eq!(plan.region_of[inviter as usize], plan.region_of[user]);
            }
            let mut seen = std::collections::BTreeSet::new();
            for &followed in &plan.follows[user] {
                prop_assert!((followed as usize) < users);
                prop_assert!(followed as usize != user, "no self-follows");
                prop_assert!(seen.insert(followed), "no duplicate follows");
            }
            prop_assert!(plan.follows[user].len() <= follows_per_user);
        }
    }

    /// Every seeded plan deploys under `AnalysisMode::Enforce`: the
    /// deploy-time pipeline re-checks the instance ownership network
    /// against the class constraints, so a clean deployment means none of
    /// AEON001–005 fired for this seed.
    #[test]
    fn every_seed_deploys_analyzer_clean(
        users in 1usize..32,
        follows_per_user in 0usize..5,
        seed in any::<u64>(),
    ) {
        let config = SocialConfig {
            regions: 2,
            users,
            chain_depth: 5,
            follows_per_user,
            zipf_s: 1.1,
            feed_capacity: 4,
            seed,
        };
        let sim = SimDeployment::builder()
            .servers(2)
            .analysis(AnalysisMode::Enforce)
            .class_graph(social_class_graph())
            .build()
            .unwrap();
        let plan = generate_plan(&config);
        let world = deploy_social_plan(&sim, plan).unwrap();
        prop_assert_eq!(world.users.len(), users);
    }

    /// The sampler accepts any seeded RNG without panicking and remains
    /// deterministic for equal seeds.
    #[test]
    fn zipf_sampling_is_deterministic_per_seed(n in 1usize..64, seed in any::<u64>()) {
        let zipf = ZipfSampler::new(n, 1.1).unwrap();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        prop_assert_eq!(draw(seed), draw(seed));
    }
}
