//! The applications used by the paper: the massively multiplayer online
//! game of §2, the TPC-C benchmark of §6.1.2, and the inductive context
//! data structures of §3 (`collections`).  Game and TPC-C are available in
//! two forms:
//!
//! * as real [`aeon_runtime::ContextObject`] implementations that run on the
//!   concurrent AEON runtime (used by the examples and integration tests);
//! * as workload generators for the cluster simulator (`aeon-sim`), in the
//!   multi-ownership (AEON), single-ownership (AEON_SO / EventWave) and
//!   Orleans variants the paper compares.

pub mod bank;
pub mod collections;
pub mod game;
pub mod social;
pub mod tpcc;

pub use bank::{deploy_bank, register_bank_factories, BankWorld, BankWorldConfig};
pub use collections::{ListSet, SearchTree};
pub use game::{GameWorkload, GameWorkloadConfig};
pub use social::{
    deploy_social, deploy_social_plan, generate_plan, register_social_factories, run_social_stream,
    social_class_graph, SocialConfig, SocialOp, SocialPlan, SocialStreamReport, SocialWorld,
    ZipfSampler,
};
pub use tpcc::{TpccWorkload, TpccWorkloadConfig, TransactionKind};

/// Class graph of a plain key/value deployment: the single `Kv` class
/// ([`aeon_runtime::KvContext`]'s method table) with no ownership
/// constraints — the smallest graph `aeon-lint` exercises.
pub fn kv_class_graph() -> aeon_ownership::ClassGraph {
    use aeon_runtime::ContextClass;
    let mut classes = aeon_ownership::ClassGraph::new();
    classes.add_class("Kv");
    aeon_runtime::KvContext::table().declare_in(&mut classes);
    classes
}

#[cfg(test)]
mod tests {
    use aeon_analyzer::analyze;

    #[test]
    fn every_builtin_class_graph_is_analyzer_clean() {
        for (name, classes) in [
            ("game", crate::game::game_class_graph()),
            ("tpcc", crate::tpcc::tpcc_class_graph()),
            ("bank", crate::bank::bank_class_graph()),
            ("social", crate::social::social_class_graph()),
            ("kv", crate::kv_class_graph()),
            ("collections", crate::collections::collections_class_graph()),
        ] {
            let report = analyze(&classes);
            assert!(
                report.is_clean(),
                "builtin graph {name} is not clean:\n{}",
                report.render_text()
            );
        }
    }
}
