//! The applications used by the paper: the massively multiplayer online
//! game of §2, the TPC-C benchmark of §6.1.2, and the inductive context
//! data structures of §3 (`collections`).  Game and TPC-C are available in
//! two forms:
//!
//! * as real [`aeon_runtime::ContextObject`] implementations that run on the
//!   concurrent AEON runtime (used by the examples and integration tests);
//! * as workload generators for the cluster simulator (`aeon-sim`), in the
//!   multi-ownership (AEON), single-ownership (AEON_SO / EventWave) and
//!   Orleans variants the paper compares.

pub mod bank;
pub mod collections;
pub mod game;
pub mod tpcc;

pub use bank::{deploy_bank, register_bank_factories, BankWorld, BankWorldConfig};
pub use collections::{ListSet, SearchTree};
pub use game::{GameWorkload, GameWorkloadConfig};
pub use tpcc::{TpccWorkload, TpccWorkloadConfig, TransactionKind};
