//! The multiplayer game application (§2 and §6.1.1).
//!
//! Structure (Figure 3): a `Building` owns `Room`s; each `Room` owns its
//! `Player`s and a pool of `Item`s; with multi-ownership, `Player`s also own
//! the `Item`s they interact with (sharing them with the `Room` and other
//! `Player`s).  Under single ownership (AEON_SO / EventWave), `Item`s are
//! owned by their `Room` only, so any item interaction must go through the
//! `Room`.
//!
//! The contextclasses are declared with [`aeon_runtime::context_class!`]
//! method tables and the deployment driver is generic over
//! [`aeon_api::Deployment`], so the same game runs unchanged on the
//! in-process runtime, the distributed cluster, and the deterministic
//! simulator.

use aeon_api::Deployment;
use aeon_ownership::{ClassGraph, Dominator, DominatorMode, DominatorResolver, OwnershipGraph};
use aeon_runtime::{context_class, ContextClass, Invocation, KvContext};
use aeon_sim::{RequestSpec, SimCluster, Step, SystemKind};
use aeon_types::{args, AeonError, Args, ContextId, Result, ServerId, SimDuration, SimTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Class constraints of the game (Figure 3, left), with the contextclass
/// method metadata declared from the method tables.
pub fn game_class_graph() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("Building", "Room");
    classes.add_constraint("Room", "Player");
    classes.add_constraint("Room", "Item");
    classes.add_constraint("Player", "Item");
    Building::table().declare_in(&mut classes);
    Room::table().declare_in(&mut classes);
    Player::table().declare_in(&mut classes);
    classes
}

// ---------------------------------------------------------------------------
// Runtime implementation (real contextclasses).
// ---------------------------------------------------------------------------

/// The `Building` contextclass of Listing 1: owns rooms, can update the time
/// of day in every room with `async` calls and count players read-only.
#[derive(Debug, Default)]
pub struct Building;

impl Building {
    fn update_time_of_day(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        for room in inv.children(Some("Room"))? {
            inv.call_async(room, "update_time_of_day", args![])?;
        }
        Ok(Value::Null)
    }

    fn count_players(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut count = 0i64;
        for room in inv.children(Some("Room"))? {
            count += inv.call(room, "nr_players", args![])?.as_i64().unwrap_or(0);
        }
        Ok(Value::from(count))
    }
}

context_class! {
    Building: "Building" {
        method "update_time_of_day" calls ["Room::update_time_of_day"] => Building::update_time_of_day,
        ro method "count_players" calls ["Room::nr_players"] => Building::count_players,
    }
}

/// The `Room` contextclass: counts players/items and propagates the time of
/// day.
#[derive(Debug, Default)]
pub struct Room {
    time_of_day: i64,
}

impl Room {
    fn update_time_of_day(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.time_of_day += 1;
        Ok(Value::from(self.time_of_day))
    }

    fn nr_players(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(inv.children(Some("Player"))?.len()))
    }

    fn nr_items(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(inv.children(Some("Item"))?.len()))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([("time_of_day", Value::from(self.time_of_day))])
    }

    fn restore_state(&mut self, state: &Value) {
        self.time_of_day = state
            .get("time_of_day")
            .and_then(Value::as_i64)
            .unwrap_or(0);
    }
}

context_class! {
    Room: "Room" {
        method "update_time_of_day" calls [] => Room::update_time_of_day,
        ro method "nr_players" calls [] => Room::nr_players,
        ro method "nr_items" calls [] => Room::nr_items,
    }
    snapshot = Room::snapshot_state;
    restore = Room::restore_state;
}

/// The `Player` contextclass of Listing 1: moves gold from its mine into the
/// (shared) treasure.
#[derive(Debug, Default)]
pub struct Player {
    /// Private gold mine item.
    pub gold_mine: Option<ContextId>,
    /// Shared treasure item.
    pub treasure: Option<ContextId>,
}

impl Player {
    fn set_items(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.gold_mine = Some(args.get_context(0)?);
        self.treasure = Some(args.get_context(1)?);
        Ok(Value::Null)
    }

    fn get_gold(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let amount = args.get_i64(0)?;
        let mine = self
            .gold_mine
            .ok_or_else(|| AeonError::app("player has no mine"))?;
        let treasure = self
            .treasure
            .ok_or_else(|| AeonError::app("player has no treasure"))?;
        let available = inv.call(mine, "get", args!["gold"])?.as_i64().unwrap_or(0);
        if available < amount {
            return Ok(Value::Bool(false));
        }
        inv.call(mine, "incr", args!["gold", -amount])?;
        inv.call(treasure, "incr", args!["gold", amount])?;
        Ok(Value::Bool(true))
    }

    fn treasure_balance(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let treasure = self
            .treasure
            .ok_or_else(|| AeonError::app("player has no treasure"))?;
        inv.call(treasure, "get", args!["gold"])
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            (
                "gold_mine",
                self.gold_mine.map(Value::from).unwrap_or(Value::Null),
            ),
            (
                "treasure",
                self.treasure.map(Value::from).unwrap_or(Value::Null),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.gold_mine = state.get("gold_mine").and_then(Value::as_context);
        self.treasure = state.get("treasure").and_then(Value::as_context);
    }
}

context_class! {
    Player: "Player" {
        method "set_items" calls [] => Player::set_items,
        method "get_gold" calls ["Item::get", "Item::incr"] => Player::get_gold,
        ro method "treasure_balance" calls ["Item::get"] => Player::treasure_balance,
    }
    snapshot = Player::snapshot_state;
    restore = Player::restore_state;
}

/// Handles to a deployed game world.
#[derive(Debug, Clone)]
pub struct GameWorld {
    /// The building (root of the ownership DAG).
    pub building: ContextId,
    /// The rooms, one per server by default.
    pub rooms: Vec<ContextId>,
    /// Players, grouped by room.
    pub players: Vec<Vec<ContextId>>,
    /// The shared treasure of each room.
    pub treasures: Vec<ContextId>,
}

/// Deploys a game world onto any [`Deployment`] backend: `rooms` rooms each
/// holding `players_per_room` players, a private gold mine per player and
/// one shared treasure per room.
///
/// # Errors
///
/// Propagates context-creation failures.
pub fn deploy_game(
    deployment: &dyn Deployment,
    rooms: usize,
    players_per_room: usize,
) -> Result<GameWorld> {
    let session = deployment.session();
    let building = deployment.create_context(Box::new(Building), aeon_api::Placement::Auto)?;
    let mut world = GameWorld {
        building,
        rooms: Vec::new(),
        players: Vec::new(),
        treasures: Vec::new(),
    };
    for _ in 0..rooms {
        let room = deployment.create_owned_context(Box::new(Room::default()), &[building])?;
        let treasure = deployment.create_owned_context(
            Box::new(KvContext::with_entries(
                "Item",
                [("gold", Value::from(0i64))],
            )),
            &[room],
        )?;
        let mut room_players = Vec::new();
        for _ in 0..players_per_room {
            let player = deployment.create_owned_context(Box::new(Player::default()), &[room])?;
            let mine = deployment.create_owned_context(
                Box::new(KvContext::with_entries(
                    "Item",
                    [("gold", Value::from(1_000_000i64))],
                )),
                &[player],
            )?;
            deployment.add_ownership(player, treasure)?;
            session.call(player, "set_items", args![mine, treasure])?;
            room_players.push(player);
        }
        world.rooms.push(room);
        world.players.push(room_players);
        world.treasures.push(treasure);
    }
    Ok(world)
}

// ---------------------------------------------------------------------------
// Simulator workload.
// ---------------------------------------------------------------------------

/// Parameters of the simulated game workload (Figures 5a/5b).
#[derive(Debug, Clone)]
pub struct GameWorkloadConfig {
    /// Number of servers; one room per server, as in §6.1.1.
    pub servers: usize,
    /// Players per room.
    pub players_per_room: usize,
    /// Items per room (fixed, shared among the room's players).
    pub items_per_room: usize,
    /// Aggregate request rate offered to the whole cluster (requests/s).
    pub request_rate: f64,
    /// Experiment duration.
    pub duration: SimDuration,
    /// Fraction of requests that touch a shared room item.
    pub shared_fraction: f64,
    /// Fraction of requests that touch only the player's private items.
    pub private_item_fraction: f64,
    /// Fraction of read-only requests (e.g. `nr_players`).
    pub readonly_fraction: f64,
    /// CPU time of the player-side work.
    pub player_service: SimDuration,
    /// CPU time of an item access.
    pub item_service: SimDuration,
    /// Ordering cost per event at the EventWave root.
    pub root_ordering: SimDuration,
    /// Random seed.
    pub seed: u64,
}

impl Default for GameWorkloadConfig {
    fn default() -> Self {
        Self {
            servers: 8,
            players_per_room: 16,
            items_per_room: 8,
            request_rate: 8_000.0,
            duration: SimDuration::from_secs(10),
            shared_fraction: 0.25,
            private_item_fraction: 0.45,
            readonly_fraction: 0.10,
            player_service: SimDuration::from_micros(1_000),
            item_service: SimDuration::from_micros(500),
            root_ordering: SimDuration::from_micros(200),
            seed: 11,
        }
    }
}

impl GameWorkloadConfig {
    /// Scales the offered load with the cluster size (used for the
    /// scale-out experiment of Figure 5a).
    pub fn for_servers(servers: usize) -> Self {
        Self {
            servers,
            request_rate: 1_500.0 * servers as f64,
            ..Self::default()
        }
    }
}

/// A generated game workload: the cluster and its requests for one system.
#[derive(Debug)]
pub struct GameWorkload {
    /// The cluster (placement already decided for the system).
    pub cluster: SimCluster,
    /// The requests to simulate.
    pub requests: Vec<RequestSpec>,
    /// The ownership network underlying the workload (for inspection).
    pub graph: OwnershipGraph,
}

impl GameWorkload {
    /// Generates the workload for `system` under `config`.
    pub fn generate(system: SystemKind, config: &GameWorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let servers = config.servers.max(1);
        let mut graph = OwnershipGraph::new();
        let mut next_id = 0u64;
        let mut fresh = |graph: &mut OwnershipGraph, class: &str| {
            let id = ContextId::new(next_id);
            next_id += 1;
            graph.add_context(id, class).expect("fresh id");
            id
        };

        let building = fresh(&mut graph, "Building");
        let mut rooms = Vec::with_capacity(servers);
        let mut players: Vec<Vec<ContextId>> = Vec::with_capacity(servers);
        let mut shared_items: Vec<Vec<ContextId>> = Vec::with_capacity(servers);
        let mut private_items: Vec<Vec<ContextId>> = Vec::with_capacity(servers);
        for _ in 0..servers {
            let room = fresh(&mut graph, "Room");
            graph.add_edge(building, room).unwrap();
            let items: Vec<ContextId> = (0..config.items_per_room)
                .map(|_| {
                    let item = fresh(&mut graph, "Item");
                    graph.add_edge(room, item).unwrap();
                    item
                })
                .collect();
            let mut room_players = Vec::new();
            let mut room_private = Vec::new();
            for _ in 0..config.players_per_room {
                let player = fresh(&mut graph, "Player");
                graph.add_edge(room, player).unwrap();
                if system.multi_ownership() {
                    // Every player shares the room's items.
                    for item in &items {
                        graph.add_edge(player, *item).unwrap();
                    }
                }
                // A private item per player (owned by the room only under
                // single ownership).
                let private = fresh(&mut graph, "Item");
                if system.multi_ownership() {
                    graph.add_edge(player, private).unwrap();
                } else {
                    graph.add_edge(room, private).unwrap();
                }
                room_players.push(player);
                room_private.push(private);
            }
            rooms.push(room);
            players.push(room_players);
            shared_items.push(items);
            private_items.push(room_private);
        }

        // Placement.
        let mut cluster = SimCluster::new(servers, 2)
            .with_cpu_overhead(system.cpu_overhead())
            .with_seed(config.seed);
        let place_random = !system.locality_placement();
        for ctx in graph.contexts() {
            let server = if place_random {
                ServerId::new(rng.gen_range(0..servers) as u32)
            } else {
                // Locality: everything under room r goes to server r.
                ServerId::new(0)
            };
            cluster.place(ctx, server);
        }
        if !place_random {
            cluster.place(building, ServerId::new(0));
            for (r, room) in rooms.iter().enumerate() {
                let server = ServerId::new((r % servers) as u32);
                cluster.place(*room, server);
                for p in &players[r] {
                    cluster.place(*p, server);
                }
                for i in &shared_items[r] {
                    cluster.place(*i, server);
                }
                for i in &private_items[r] {
                    cluster.place(*i, server);
                }
            }
        }

        // Dominators for the AEON variants come from the real resolver.
        let resolver = DominatorResolver::new(DominatorMode::Closure);
        let dominator_of = |graph: &OwnershipGraph, target: ContextId| -> ContextId {
            match resolver.dominator(graph, target).expect("known context") {
                Dominator::Context(c) => c,
                Dominator::GlobalRoot => building,
            }
        };

        // Requests.
        let total = (config.request_rate * config.duration.as_secs_f64()) as usize;
        let mut requests = Vec::with_capacity(total);
        for k in 0..total {
            let arrival = SimTime::from_micros((k as f64 / config.request_rate * 1e6) as u64);
            let room_idx = rng.gen_range(0..servers);
            let player_idx = rng.gen_range(0..config.players_per_room);
            let room = rooms[room_idx];
            let player = players[room_idx][player_idx];
            let private = private_items[room_idx][player_idx];
            let shared = shared_items[room_idx][rng.gen_range(0..config.items_per_room.max(1))];

            let roll: f64 = rng.gen();
            let readonly = rng.gen::<f64>() < config.readonly_fraction;
            let (kind, touched_item) = if roll < config.shared_fraction {
                ("shared", Some(shared))
            } else if roll < config.shared_fraction + config.private_item_fraction {
                ("private", Some(private))
            } else {
                ("player", None)
            };

            // Steps: the player-side work plus the item access (if any).  In
            // single-ownership systems item work happens in the room.
            let mut steps = Vec::new();
            let mut sequencers = Vec::new();
            match system {
                SystemKind::Aeon => {
                    // Events touching a shared item are sequenced at the
                    // dominator of their target (the Room); events on
                    // player-private state keep their own sequencer and run
                    // in parallel — the parallelism multi-ownership buys.
                    if kind == "shared" {
                        let dom = dominator_of(&graph, player);
                        if dom != player {
                            sequencers.push(dom);
                        }
                    }
                    sequencers.push(player);
                    if let Some(item) = touched_item {
                        sequencers.push(item);
                    }
                    steps.push(Step::new(player, config.player_service));
                    if let Some(item) = touched_item {
                        steps.push(Step::new(item, config.item_service));
                    }
                }
                SystemKind::AeonSo | SystemKind::EventWave => {
                    if kind == "player" {
                        sequencers.push(player);
                        steps.push(Step::new(player, config.player_service));
                    } else {
                        // Item access must go through the room.
                        sequencers.push(room);
                        steps.push(Step::new(room, config.player_service));
                        if let Some(item) = touched_item {
                            steps.push(Step::new(item, config.item_service));
                        }
                    }
                    if system.orders_at_root() {
                        // Total order at the tree root: a brief, contended
                        // sequencing step at the root context.
                        steps.insert(0, Step::new(building, config.root_ordering));
                    }
                }
                SystemKind::OrleansStrict => {
                    // Strict serializability by locking the whole room.
                    sequencers.push(room);
                    steps.push(Step::new(player, config.player_service));
                    if let Some(item) = touched_item {
                        steps.push(Step::new(item, config.item_service));
                    }
                }
                SystemKind::OrleansStar => {
                    // No cross-grain synchronisation: per-grain mailboxes
                    // only.
                    steps.push(Step::new(player, config.player_service));
                    if let Some(item) = touched_item {
                        steps.push(Step::new(item, config.item_service));
                    }
                }
            }
            let mut request = RequestSpec::new(arrival, sequencers, steps).labelled("game");
            if readonly {
                request = request.readonly();
            }
            requests.push(request);
        }
        Self {
            cluster,
            requests,
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_api::Session;
    use aeon_runtime::AeonRuntime;
    use aeon_sim::Simulator;

    #[test]
    fn runtime_game_listing1_scenario() {
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(game_class_graph())
            .build()
            .unwrap();
        let world = deploy_game(&runtime, 2, 2).unwrap();
        let client = runtime.client();
        // Every player can move gold into the shared treasure.
        for (r, players) in world.players.iter().enumerate() {
            for p in players {
                assert_eq!(
                    client.call(*p, "get_gold", args![10]).unwrap(),
                    Value::Bool(true)
                );
            }
            assert_eq!(
                client
                    .call_readonly(world.treasures[r], "get", args!["gold"])
                    .unwrap(),
                Value::from(20i64)
            );
        }
        // Building-level aggregate and async time-of-day update.
        assert_eq!(
            client
                .call_readonly(world.building, "count_players", args![])
                .unwrap(),
            Value::from(4i64)
        );
        client
            .call(world.building, "update_time_of_day", args![])
            .unwrap();
        runtime.shutdown();
    }

    #[test]
    fn players_share_treasure_and_dominate_at_room() {
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(game_class_graph())
            .build()
            .unwrap();
        let world = deploy_game(&runtime, 1, 3).unwrap();
        for p in &world.players[0] {
            assert_eq!(
                runtime.dominator_of(*p).unwrap(),
                Dominator::Context(world.rooms[0])
            );
        }
        runtime.shutdown();
    }

    #[test]
    fn class_graph_carries_method_metadata() {
        let classes = game_class_graph();
        assert_eq!(
            classes.readonly_method("Building", "count_players"),
            Some(true)
        );
        assert_eq!(
            classes.readonly_method("Building", "update_time_of_day"),
            Some(false)
        );
        assert_eq!(
            classes.readonly_method("Player", "treasure_balance"),
            Some(true)
        );
        assert_eq!(classes.readonly_method("Room", "nope"), None);
        assert_eq!(classes.methods_of("Room").len(), 3);
    }

    #[test]
    fn unknown_methods_are_uniformly_rejected() {
        let runtime = AeonRuntime::builder().build().unwrap();
        let building = runtime
            .create_context(Box::new(Building), aeon_api::Placement::Auto)
            .unwrap();
        let client = runtime.client();
        let err = client
            .call(building, "no_such_method", args![])
            .unwrap_err();
        assert!(matches!(err, AeonError::UnknownMethod { class, method }
            if class == "Building" && method == "no_such_method"));
        runtime.shutdown();
    }

    #[test]
    fn workload_generation_respects_system_structure() {
        let config = GameWorkloadConfig {
            servers: 2,
            players_per_room: 2,
            items_per_room: 2,
            request_rate: 100.0,
            duration: SimDuration::from_secs(1),
            ..GameWorkloadConfig::default()
        };
        let aeon = GameWorkload::generate(SystemKind::Aeon, &config);
        let so = GameWorkload::generate(SystemKind::AeonSo, &config);
        assert_eq!(aeon.requests.len(), 100);
        assert_eq!(so.requests.len(), 100);
        // Multi-ownership graph has player->item edges; single ownership
        // does not.
        let aeon_edges = aeon.graph.edges().count();
        let so_edges = so.graph.edges().count();
        assert!(aeon_edges > so_edges);
        // Orleans* requests never carry sequencers.
        let star = GameWorkload::generate(SystemKind::OrleansStar, &config);
        assert!(star.requests.iter().all(|r| r.sequencers.is_empty()));
        // EventWave requests all pass through the root ordering step.
        let ew = GameWorkload::generate(SystemKind::EventWave, &config);
        let building = ew.graph.roots()[0];
        assert!(ew
            .requests
            .iter()
            .all(|r| r.steps.first().map(|s| s.context) == Some(building)));
    }

    #[test]
    fn simulated_throughput_ordering_matches_figure_5a() {
        // At 8 servers the paper's ordering is
        // AEON > AEON_SO > Orleans* > {Orleans, EventWave}.
        let config = GameWorkloadConfig::for_servers(8);
        let mut throughput = std::collections::HashMap::new();
        for system in SystemKind::ALL {
            let mut workload = GameWorkload::generate(system, &config);
            let metrics = Simulator::new().run(&mut workload.cluster, &workload.requests);
            throughput.insert(
                system,
                metrics.throughput(Some(SimTime::ZERO + config.duration)),
            );
        }
        let get = |s: SystemKind| throughput[&s];
        assert!(get(SystemKind::Aeon) >= get(SystemKind::AeonSo) * 0.99);
        assert!(get(SystemKind::AeonSo) > get(SystemKind::OrleansStar));
        assert!(get(SystemKind::OrleansStar) > get(SystemKind::OrleansStrict));
        assert!(get(SystemKind::Aeon) > get(SystemKind::EventWave));
    }
}
