//! The TPC-C benchmark (§6.1.2), partitioned by district as in the paper.
//!
//! Context structure (multi-ownership variant):
//!
//! ```text
//! WareHouse ── District ── Customer ── Order ── {NewOrder, OrderLine}
//!                     └──────────────── Order      (shared with Customer)
//! ```
//!
//! Under single ownership the `Order` contexts are owned by their `Customer`
//! only.
//!
//! The contextclasses are declared with [`aeon_runtime::context_class!`]
//! method tables and the transaction drivers are generic over
//! [`aeon_api::Deployment`]/[`aeon_api::Session`].

use aeon_api::{Deployment, Placement, Session};
use aeon_ownership::{ClassGraph, Dominator, DominatorMode, DominatorResolver, OwnershipGraph};
use aeon_runtime::{context_class, ContextClass, Invocation};
use aeon_sim::{RequestSpec, SimCluster, Step, SystemKind};
use aeon_types::{args, AeonError, Args, ContextId, Result, ServerId, SimDuration, SimTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Class constraints of the TPC-C application (§6.1.2 listing), with the
/// contextclass method metadata declared from the method tables.
pub fn tpcc_class_graph() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("WareHouse", "Stock");
    classes.add_constraint("WareHouse", "District");
    classes.add_constraint("District", "Customer");
    classes.add_constraint("District", "Order");
    classes.add_constraint("Customer", "History");
    classes.add_constraint("Customer", "Order");
    classes.add_constraint("Order", "NewOrder");
    classes.add_constraint("Order", "OrderLine");
    Warehouse::table().declare_in(&mut classes);
    District::table().declare_in(&mut classes);
    Customer::table().declare_in(&mut classes);
    classes
}

/// The five TPC-C transaction types and their standard mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransactionKind {
    /// New-order (45% of the mix).
    NewOrder,
    /// Payment (43%).
    Payment,
    /// Order-status, read-only (4%).
    OrderStatus,
    /// Delivery (4%).
    Delivery,
    /// Stock-level, read-only (4%).
    StockLevel,
}

impl TransactionKind {
    /// Draws a transaction type according to the standard TPC-C mix.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let roll: f64 = rng.gen();
        if roll < 0.45 {
            TransactionKind::NewOrder
        } else if roll < 0.88 {
            TransactionKind::Payment
        } else if roll < 0.92 {
            TransactionKind::OrderStatus
        } else if roll < 0.96 {
            TransactionKind::Delivery
        } else {
            TransactionKind::StockLevel
        }
    }

    /// Whether the transaction is read-only.
    pub fn readonly(self) -> bool {
        matches!(
            self,
            TransactionKind::OrderStatus | TransactionKind::StockLevel
        )
    }
}

// ---------------------------------------------------------------------------
// Runtime implementation (real contextclasses).
// ---------------------------------------------------------------------------

/// The warehouse context: year-to-date totals and the (fixed) item/stock
/// catalogue, which does not need elasticity and therefore lives inside the
/// warehouse context as the paper does.
#[derive(Debug, Default)]
pub struct Warehouse {
    ytd: i64,
    stock: std::collections::BTreeMap<i64, i64>,
}

impl Warehouse {
    /// Creates a warehouse with `items` catalogue entries of `quantity`
    /// stock each.
    pub fn new(items: i64, quantity: i64) -> Self {
        Self {
            ytd: 0,
            stock: (0..items).map(|i| (i, quantity)).collect(),
        }
    }

    fn add_ytd(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.ytd += args.get_i64(0)?;
        Ok(Value::from(self.ytd))
    }

    fn ytd(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.ytd))
    }

    fn reserve_stock(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        let item = args.get_i64(0)?;
        let qty = args.get_i64(1)?;
        let entry = self
            .stock
            .get_mut(&item)
            .ok_or_else(|| AeonError::app(format!("unknown item {item}")))?;
        if *entry < qty {
            *entry += 91; // TPC-C restock rule
        }
        *entry -= qty;
        Ok(Value::from(*entry))
    }

    fn stock_level(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        let threshold = args.get_i64(0)?;
        let low = self.stock.values().filter(|q| **q < threshold).count();
        Ok(Value::from(low))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([("ytd", Value::from(self.ytd))])
    }

    fn restore_state(&mut self, state: &Value) {
        self.ytd = state.get("ytd").and_then(Value::as_i64).unwrap_or(0);
    }
}

context_class! {
    Warehouse: "WareHouse" {
        method "add_ytd" calls [] => Warehouse::add_ytd,
        ro method "ytd" calls [] => Warehouse::ytd,
        method "reserve_stock" calls [] => Warehouse::reserve_stock,
        ro method "stock_level" calls [] => Warehouse::stock_level,
    }
    snapshot = Warehouse::snapshot_state;
    restore = Warehouse::restore_state;
}

/// The district context: order-id counter and year-to-date totals.
#[derive(Debug, Default)]
pub struct District {
    ytd: i64,
    next_order_id: i64,
}

impl District {
    fn add_ytd(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.ytd += args.get_i64(0)?;
        Ok(Value::from(self.ytd))
    }

    fn ytd(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.ytd))
    }

    fn next_order_id(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        let id = self.next_order_id;
        self.next_order_id += 1;
        Ok(Value::from(id))
    }

    fn order_count(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.next_order_id))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            ("ytd", Value::from(self.ytd)),
            ("next_order_id", Value::from(self.next_order_id)),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.ytd = state.get("ytd").and_then(Value::as_i64).unwrap_or(0);
        self.next_order_id = state
            .get("next_order_id")
            .and_then(Value::as_i64)
            .unwrap_or(0);
    }
}

context_class! {
    District: "District" {
        method "add_ytd" calls [] => District::add_ytd,
        ro method "ytd" calls [] => District::ytd,
        method "next_order_id" calls [] => District::next_order_id,
        ro method "order_count" calls [] => District::order_count,
    }
    snapshot = District::snapshot_state;
    restore = District::restore_state;
}

/// The customer context: balance, payment history and its orders.
#[derive(Debug, Default)]
pub struct Customer {
    balance: i64,
    payments: i64,
    orders: Vec<i64>,
}

impl Customer {
    fn pay(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        let amount = args.get_i64(0)?;
        self.balance -= amount;
        self.payments += 1;
        Ok(Value::from(self.balance))
    }

    fn record_order(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.orders.push(args.get_i64(0)?);
        Ok(Value::from(self.orders.len()))
    }

    fn last_order(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(self
            .orders
            .last()
            .map(|o| Value::from(*o))
            .unwrap_or(Value::Null))
    }

    fn balance(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.balance))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            ("balance", Value::from(self.balance)),
            ("payments", Value::from(self.payments)),
            (
                "orders",
                Value::List(self.orders.iter().map(|o| Value::from(*o)).collect()),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.balance = state.get("balance").and_then(Value::as_i64).unwrap_or(0);
        self.payments = state.get("payments").and_then(Value::as_i64).unwrap_or(0);
        if let Some(orders) = state.get("orders").and_then(Value::as_list) {
            self.orders = orders.iter().filter_map(Value::as_i64).collect();
        }
    }
}

context_class! {
    Customer: "Customer" {
        method "pay" calls [] => Customer::pay,
        method "record_order" calls [] => Customer::record_order,
        ro method "last_order" calls [] => Customer::last_order,
        ro method "balance" calls [] => Customer::balance,
    }
    snapshot = Customer::snapshot_state;
    restore = Customer::restore_state;
}

/// A deployed TPC-C database.
#[derive(Debug, Clone)]
pub struct TpccWorld {
    /// The single warehouse context.
    pub warehouse: ContextId,
    /// One district per logical partition.
    pub districts: Vec<ContextId>,
    /// Customers, grouped by district.
    pub customers: Vec<Vec<ContextId>>,
}

/// Deploys a (scaled-down) TPC-C database on any [`Deployment`] backend:
/// one warehouse, `districts` districts, `customers_per_district` customers
/// each.
///
/// # Errors
///
/// Propagates context-creation failures.
pub fn deploy_tpcc(
    deployment: &dyn Deployment,
    districts: usize,
    customers_per_district: usize,
) -> Result<TpccWorld> {
    let warehouse =
        deployment.create_context(Box::new(Warehouse::new(100, 1_000)), Placement::Auto)?;
    let mut world = TpccWorld {
        warehouse,
        districts: Vec::new(),
        customers: Vec::new(),
    };
    for _ in 0..districts {
        let district =
            deployment.create_owned_context(Box::new(District::default()), &[warehouse])?;
        let mut customers = Vec::new();
        for _ in 0..customers_per_district {
            customers
                .push(deployment.create_owned_context(Box::new(Customer::default()), &[district])?);
        }
        world.districts.push(district);
        world.customers.push(customers);
    }
    Ok(world)
}

/// Executes a New-Order transaction against the deployed world through any
/// [`Session`].
///
/// # Errors
///
/// Propagates event execution failures.
pub fn run_new_order(
    session: &dyn Session,
    world: &TpccWorld,
    district_idx: usize,
    customer_idx: usize,
    amount: i64,
) -> Result<i64> {
    let district = world.districts[district_idx];
    let customer = world.customers[district_idx][customer_idx];
    session.call(world.warehouse, "reserve_stock", args![amount % 100, 1])?;
    let order_id = session
        .call(district, "next_order_id", args![])?
        .as_i64()
        .unwrap_or(0);
    session.call(customer, "record_order", args![order_id])?;
    Ok(order_id)
}

/// Executes a Payment transaction: warehouse, district and customer YTD /
/// balance updates (the TPC-C consistency condition W_YTD = Σ D_YTD is
/// checked by the tests).
///
/// # Errors
///
/// Propagates event execution failures.
pub fn run_payment(
    session: &dyn Session,
    world: &TpccWorld,
    district_idx: usize,
    customer_idx: usize,
    amount: i64,
) -> Result<()> {
    session.call(world.warehouse, "add_ytd", args![amount])?;
    session.call(world.districts[district_idx], "add_ytd", args![amount])?;
    session.call(
        world.customers[district_idx][customer_idx],
        "pay",
        args![amount],
    )?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Simulator workload.
// ---------------------------------------------------------------------------

/// Parameters of the simulated TPC-C workload (Figures 6a/6b).
#[derive(Debug, Clone)]
pub struct TpccWorkloadConfig {
    /// Number of servers; one district per server (partitioned by district,
    /// following Rococo as the paper does).
    pub servers: usize,
    /// Customers modelled per district.
    pub customers_per_district: usize,
    /// Aggregate transaction rate offered to the cluster (transactions/s).
    pub request_rate: f64,
    /// Experiment duration.
    pub duration: SimDuration,
    /// CPU time spent in the warehouse context per transaction.
    pub warehouse_service: SimDuration,
    /// CPU time spent in the district context.
    pub district_service: SimDuration,
    /// CPU time spent in the customer/order contexts.
    pub customer_service: SimDuration,
    /// Ordering cost per event at the EventWave root (the warehouse).
    pub root_ordering: SimDuration,
    /// Random seed.
    pub seed: u64,
}

impl Default for TpccWorkloadConfig {
    fn default() -> Self {
        Self {
            servers: 8,
            customers_per_district: 30,
            request_rate: 400.0,
            duration: SimDuration::from_secs(20),
            warehouse_service: SimDuration::from_millis(1),
            district_service: SimDuration::from_millis(5),
            customer_service: SimDuration::from_millis(10),
            root_ordering: SimDuration::from_millis(2),
            seed: 23,
        }
    }
}

impl TpccWorkloadConfig {
    /// Scales the offered load with the cluster size (Figure 6a).
    pub fn for_servers(servers: usize) -> Self {
        Self {
            servers,
            request_rate: 50.0 * servers as f64,
            ..Self::default()
        }
    }
}

/// A generated TPC-C workload for one system.
#[derive(Debug)]
pub struct TpccWorkload {
    /// The cluster with placement decided.
    pub cluster: SimCluster,
    /// The transactions to simulate.
    pub requests: Vec<RequestSpec>,
    /// The ownership network underlying the workload.
    pub graph: OwnershipGraph,
}

impl TpccWorkload {
    /// Generates the workload for `system` under `config`.
    pub fn generate(system: SystemKind, config: &TpccWorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let servers = config.servers.max(1);
        let mut graph = OwnershipGraph::new();
        let mut next_id = 0u64;
        let mut fresh = |graph: &mut OwnershipGraph, class: &str| {
            let id = ContextId::new(next_id);
            next_id += 1;
            graph.add_context(id, class).expect("fresh id");
            id
        };
        let warehouse = fresh(&mut graph, "WareHouse");
        let mut districts = Vec::new();
        let mut customers: Vec<Vec<ContextId>> = Vec::new();
        let mut orders: Vec<Vec<ContextId>> = Vec::new();
        for _ in 0..servers {
            let district = fresh(&mut graph, "District");
            graph.add_edge(warehouse, district).unwrap();
            let mut district_customers = Vec::new();
            let mut district_orders = Vec::new();
            for _ in 0..config.customers_per_district {
                let customer = fresh(&mut graph, "Customer");
                graph.add_edge(district, customer).unwrap();
                let order = fresh(&mut graph, "Order");
                graph.add_edge(customer, order).unwrap();
                if system.multi_ownership() {
                    // Orders are shared between the customer and the
                    // district (the paper's multi-ownership structure).
                    graph.add_edge(district, order).unwrap();
                }
                district_customers.push(customer);
                district_orders.push(order);
            }
            districts.push(district);
            customers.push(district_customers);
            orders.push(district_orders);
        }

        // Placement: the warehouse on server 0, each district (and its
        // customers/orders) on its own server; random for Orleans.
        let mut cluster = SimCluster::new(servers, 2)
            .with_cpu_overhead(system.cpu_overhead())
            .with_seed(config.seed);
        for ctx in graph.contexts() {
            let server = if system.locality_placement() {
                ServerId::new(0)
            } else {
                ServerId::new(rng.gen_range(0..servers) as u32)
            };
            cluster.place(ctx, server);
        }
        if system.locality_placement() {
            cluster.place(warehouse, ServerId::new(0));
            for d in 0..servers {
                let server = ServerId::new((d % servers) as u32);
                cluster.place(districts[d], server);
                for c in &customers[d] {
                    cluster.place(*c, server);
                }
                for o in &orders[d] {
                    cluster.place(*o, server);
                }
            }
        }

        let resolver = DominatorResolver::new(DominatorMode::Closure);
        let dominator_of = |target: ContextId| -> ContextId {
            match resolver.dominator(&graph, target).expect("known context") {
                Dominator::Context(c) => c,
                Dominator::GlobalRoot => warehouse,
            }
        };

        let total = (config.request_rate * config.duration.as_secs_f64()) as usize;
        let mut requests = Vec::with_capacity(total);
        for k in 0..total {
            let arrival = SimTime::from_micros((k as f64 / config.request_rate * 1e6) as u64);
            let kind = TransactionKind::sample(&mut rng);
            let d = rng.gen_range(0..servers);
            let c = rng.gen_range(0..config.customers_per_district);
            let district = districts[d];
            let customer = customers[d][c];
            let order = orders[d][c];

            // The contexts each transaction touches.
            let mut steps = Vec::new();
            match kind {
                TransactionKind::NewOrder => {
                    steps.push(Step::new(warehouse, config.warehouse_service));
                    steps.push(Step::new(district, config.district_service));
                    steps.push(Step::new(customer, config.customer_service));
                    steps.push(Step::new(order, config.customer_service));
                }
                TransactionKind::Payment => {
                    steps.push(Step::new(warehouse, config.warehouse_service));
                    steps.push(Step::new(district, config.district_service));
                    steps.push(Step::new(customer, config.customer_service));
                }
                TransactionKind::OrderStatus => {
                    steps.push(Step::new(customer, config.customer_service));
                    steps.push(Step::new(order, config.customer_service));
                }
                TransactionKind::Delivery => {
                    steps.push(Step::new(district, config.district_service));
                    steps.push(Step::new(order, config.customer_service));
                }
                TransactionKind::StockLevel => {
                    steps.push(Step::new(district, config.district_service));
                    steps.push(Step::new(warehouse, config.warehouse_service));
                }
            }

            // The sequencer(s) the event holds for its whole duration.
            let mut sequencers = Vec::new();
            match system {
                SystemKind::Aeon => {
                    // Multi-ownership: orders shared by district and
                    // customer, so customer-targeted events are sequenced at
                    // the district (its dominator).
                    sequencers.push(dominator_of(customer));
                }
                SystemKind::AeonSo => {
                    // Single ownership: the customer is its own dominator;
                    // district-targeted transactions sequence at the
                    // district.
                    match kind {
                        TransactionKind::Delivery | TransactionKind::StockLevel => {
                            sequencers.push(district)
                        }
                        _ => sequencers.push(customer),
                    }
                }
                SystemKind::EventWave => {
                    // The tree root is the warehouse, which almost every
                    // transaction writes; without AEON's async early release
                    // the in-order execution at the root serialises whole
                    // transactions (this is the paper's explanation for
                    // EventWave's flat TPC-C curve).
                    sequencers.push(warehouse);
                    steps.insert(0, Step::new(warehouse, config.root_ordering));
                }
                SystemKind::OrleansStrict => {
                    // Grains orchestrated in a tree a la EventWave: the
                    // warehouse-rooted tree is locked for serializability.
                    sequencers.push(warehouse);
                }
                SystemKind::OrleansStar => {
                    // No cross-grain synchronisation at all.
                }
            }
            let mut request = RequestSpec::new(arrival, sequencers, steps).labelled(match kind {
                TransactionKind::NewOrder => "new_order",
                TransactionKind::Payment => "payment",
                TransactionKind::OrderStatus => "order_status",
                TransactionKind::Delivery => "delivery",
                TransactionKind::StockLevel => "stock_level",
            });
            if kind.readonly() {
                request = request.readonly();
            }
            requests.push(request);
        }
        Self {
            cluster,
            requests,
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::AeonRuntime;
    use aeon_sim::Simulator;

    #[test]
    fn runtime_tpcc_consistency_invariant() {
        // W_YTD == sum of D_YTD after a batch of concurrent payments
        // (TPC-C consistency condition 1), and order ids are unique per
        // district.
        let runtime = AeonRuntime::builder()
            .servers(4)
            .class_graph(tpcc_class_graph())
            .build()
            .unwrap();
        let world = deploy_tpcc(&runtime, 2, 3).unwrap();
        let client = runtime.client();
        let mut expected_total = 0i64;
        for i in 0..30 {
            let d = i % 2;
            let c = i % 3;
            run_payment(&client, &world, d, c, 10).unwrap();
            expected_total += 10;
            run_new_order(&client, &world, d, c, i as i64).unwrap();
        }
        let w_ytd = client
            .call_readonly(world.warehouse, "ytd", args![])
            .unwrap();
        assert_eq!(w_ytd, Value::from(expected_total));
        let mut district_sum = 0;
        for d in &world.districts {
            district_sum += client
                .call_readonly(*d, "ytd", args![])
                .unwrap()
                .as_i64()
                .unwrap();
        }
        assert_eq!(district_sum, expected_total);
        // 15 orders per district, ids 0..15.
        for d in &world.districts {
            assert_eq!(
                client.call_readonly(*d, "order_count", args![]).unwrap(),
                Value::from(15i64)
            );
        }
        runtime.shutdown();
    }

    #[test]
    fn tpcc_class_graph_is_valid_and_carries_method_metadata() {
        let classes = tpcc_class_graph();
        classes.check().unwrap();
        assert_eq!(classes.readonly_method("WareHouse", "ytd"), Some(true));
        assert_eq!(
            classes.readonly_method("WareHouse", "reserve_stock"),
            Some(false)
        );
        assert_eq!(classes.readonly_method("Customer", "balance"), Some(true));
    }

    #[test]
    fn transaction_mix_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            *counts
                .entry(TransactionKind::sample(&mut rng))
                .or_insert(0usize) += 1;
        }
        let frac = |k: TransactionKind| counts[&k] as f64 / n as f64;
        assert!((frac(TransactionKind::NewOrder) - 0.45).abs() < 0.02);
        assert!((frac(TransactionKind::Payment) - 0.43).abs() < 0.02);
        assert!((frac(TransactionKind::OrderStatus) - 0.04).abs() < 0.01);
        assert!(TransactionKind::OrderStatus.readonly());
        assert!(!TransactionKind::NewOrder.readonly());
    }

    #[test]
    fn workload_structure_differs_between_ownership_modes() {
        let config = TpccWorkloadConfig {
            servers: 2,
            customers_per_district: 4,
            request_rate: 50.0,
            duration: SimDuration::from_secs(2),
            ..TpccWorkloadConfig::default()
        };
        let aeon = TpccWorkload::generate(SystemKind::Aeon, &config);
        let so = TpccWorkload::generate(SystemKind::AeonSo, &config);
        assert!(aeon.graph.edges().count() > so.graph.edges().count());
        // In the multi-ownership variant, customer events are sequenced at
        // their district; in the single-ownership variant customers
        // sequence at themselves (that is the paper's explanation for the
        // AEON_SO advantage at 16 servers).
        let district_seqs = |w: &TpccWorkload| {
            w.requests
                .iter()
                .filter(|r| {
                    r.sequencers
                        .iter()
                        .any(|s| w.graph.class_of(*s).unwrap() == "District")
                })
                .count()
        };
        assert!(district_seqs(&aeon) > district_seqs(&so));
    }

    #[test]
    fn simulated_tpcc_ordering_matches_figure_6a() {
        // Robust shape claims from Figure 6a:
        //  (a) AEON and AEON_SO clearly beat EventWave and Orleans(strict);
        //  (b) EventWave and Orleans barely scale from 2 to 16 servers;
        //  (c) at 16 servers the single-ownership variant and Orleans* are
        //      at least as good as AEON (multi-ownership does not pay off).
        let run = |system: SystemKind, servers: usize| {
            let config = TpccWorkloadConfig::for_servers(servers);
            let mut w = TpccWorkload::generate(system, &config);
            let m = Simulator::new().run(&mut w.cluster, &w.requests);
            m.throughput(Some(SimTime::ZERO + config.duration))
        };
        let aeon16 = run(SystemKind::Aeon, 16);
        let so16 = run(SystemKind::AeonSo, 16);
        let star16 = run(SystemKind::OrleansStar, 16);
        let ew16 = run(SystemKind::EventWave, 16);
        let orleans16 = run(SystemKind::OrleansStrict, 16);
        assert!(aeon16 > ew16, "AEON {aeon16} vs EventWave {ew16}");
        assert!(aeon16 > orleans16, "AEON {aeon16} vs Orleans {orleans16}");
        assert!(so16 >= aeon16 * 0.95, "AEON_SO {so16} vs AEON {aeon16}");
        assert!(
            star16 >= aeon16 * 0.95,
            "Orleans* {star16} vs AEON {aeon16}"
        );
        // EventWave and Orleans stay roughly flat as servers grow.
        let ew2 = run(SystemKind::EventWave, 2);
        let orleans2 = run(SystemKind::OrleansStrict, 2);
        assert!(
            ew16 < ew2 * 2.5,
            "EventWave does not scale: {ew2} -> {ew16}"
        );
        assert!(
            orleans16 < orleans2 * 2.5,
            "Orleans does not scale: {orleans2} -> {orleans16}"
        );
    }
}
