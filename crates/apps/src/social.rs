//! A social/session-graph workload that manufactures hot spots on purpose.
//!
//! Structure: [`Region`] roots own invitation chains of [`User`]s (each
//! user owns the user it invited, so ownership chains run `chain_depth`
//! deep); every user owns its own [`Feed`], and *following* another user
//! co-owns that user's feed (multi-ownership, §3 of the paper).  Follow
//! targets are sampled from a Zipf distribution over the region's users, so
//! a handful of celebrity feeds accumulate many owners — their dominators
//! climb toward the region root, and the Zipf-skewed request stream then
//! concentrates sequencing traffic on exactly those hot dominators.  That
//! is the access pattern where parallel-execution middleware breaks first,
//! and the one the chaos checker migrates out from under live load.
//!
//! Everything is generated deterministically from a seed: the graph shape
//! ([`generate_plan`]) and the request stream
//! ([`SocialPlan::request_stream`]) are pure functions of the
//! [`SocialConfig`], so the same workload replays bit-for-bit on the
//! runtime, the cluster, and the deterministic simulator.  Feeds are ring
//! buffers capped at `feed_capacity` posts, which keeps memory bounded even
//! at the 10⁶-context scale the `tests/social_scale.rs` suite deploys.

use aeon_api::{Deployment, Session};
use aeon_ownership::ClassGraph;
use aeon_runtime::{context_class, ContextClass, ContextObject, Invocation, Placement};
use aeon_types::{args, AeonError, Args, ContextId, Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Class constraints of the social graph, with method metadata declared
/// from the tables.  `User` owns `User` (invitation chains) and `Feed`
/// (its own feed plus every feed it follows); the reflexive `User` → `User`
/// constraint is the same inductive pattern the §3 collections use.
pub fn social_class_graph() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("Region", "User");
    classes.add_constraint("User", "User");
    classes.add_constraint("User", "Feed");
    Region::table().declare_in(&mut classes);
    User::table().declare_in(&mut classes);
    Feed::table().declare_in(&mut classes);
    classes
}

// ---------------------------------------------------------------------------
// Contextclasses
// ---------------------------------------------------------------------------

/// A feed: a bounded ring buffer of post payloads.
#[derive(Debug, Default)]
pub struct Feed {
    capacity: usize,
    posts: VecDeque<i64>,
}

impl Feed {
    /// Creates an empty feed that retains at most `capacity` posts
    /// (`0` means unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            posts: VecDeque::new(),
        }
    }

    fn append(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.posts.push_back(args.get_i64(0)?);
        if self.capacity > 0 {
            while self.posts.len() > self.capacity {
                self.posts.pop_front();
            }
        }
        Ok(Value::from(self.posts.len() as i64))
    }

    fn latest(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.posts.back().copied().unwrap_or(0)))
    }

    fn len(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.posts.len() as i64))
    }

    fn sum(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.posts.iter().sum::<i64>()))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            ("capacity", Value::from(self.capacity as i64)),
            (
                "posts",
                Value::List(self.posts.iter().map(|p| Value::from(*p)).collect()),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.capacity = state
            .get("capacity")
            .and_then(Value::as_i64)
            .unwrap_or(0)
            .max(0) as usize;
        self.posts = state
            .get("posts")
            .and_then(Value::as_list)
            .map(|items| items.iter().filter_map(Value::as_i64).collect())
            .unwrap_or_default();
    }
}

context_class! {
    Feed: "Feed" {
        method "append" calls [] => Feed::append,
        ro method "latest" calls [] => Feed::latest,
        ro method "len" calls [] => Feed::len,
        ro method "sum" calls [] => Feed::sum,
    }
    snapshot = Feed::snapshot_state;
    restore = Feed::restore_state;
}

/// A user: posts into its own feed and reads a timeline over the feeds it
/// follows.
#[derive(Debug, Default)]
pub struct User {
    posts: u64,
    feed: Option<ContextId>,
    follows: Vec<ContextId>,
}

impl User {
    // setup(own_feed, [followed_feed, ...]): wires the references in one
    // event so deployment needs a single call per user.
    fn setup(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.feed = Some(args.get_context(0)?);
        self.follows = args
            .get(1)
            .and_then(Value::as_list)
            .map(|items| items.iter().filter_map(Value::as_context).collect())
            .unwrap_or_default();
        Ok(Value::Null)
    }

    fn post(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let feed = self
            .feed
            .ok_or_else(|| AeonError::app("user has no feed (setup not called)"))?;
        let payload = args.get_i64(0)?;
        self.posts += 1;
        inv.call(feed, "append", args![payload])
    }

    // readonly: the latest post of every followed feed plus our own,
    // folded into one sum so the result is digestable across backends.
    fn timeline(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut feeds: Vec<ContextId> = self.feed.into_iter().collect();
        feeds.extend(self.follows.iter().copied());
        let mut total = 0i64;
        for feed in feeds {
            total += inv
                .call(feed, "latest", args![])?
                .as_i64()
                .ok_or_else(|| AeonError::app("feed returned a non-integer"))?;
        }
        Ok(Value::from(total))
    }

    fn post_count(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.posts as i64))
    }

    fn follow_count(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.follows.len() as i64))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            ("posts", Value::from(self.posts as i64)),
            (
                "feed",
                self.feed.map(Value::ContextRef).unwrap_or(Value::Null),
            ),
            (
                "follows",
                Value::List(self.follows.iter().map(|f| Value::ContextRef(*f)).collect()),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.posts = state
            .get("posts")
            .and_then(Value::as_i64)
            .unwrap_or(0)
            .max(0) as u64;
        self.feed = state.get("feed").and_then(Value::as_context);
        self.follows = state
            .get("follows")
            .and_then(Value::as_list)
            .map(|items| items.iter().filter_map(Value::as_context).collect())
            .unwrap_or_default();
    }
}

context_class! {
    User: "User" {
        method "setup" calls [] => User::setup,
        method "post" calls ["Feed::append"] => User::post,
        ro method "timeline" calls ["Feed::latest"] => User::timeline,
        ro method "post_count" calls [] => User::post_count,
        ro method "follow_count" calls [] => User::follow_count,
    }
    snapshot = User::snapshot_state;
    restore = User::restore_state;
}

/// A region root: the top of every invitation chain deployed into it.
#[derive(Debug, Default)]
pub struct Region;

impl Region {
    fn user_count(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(inv.children(Some("User"))?.len() as i64))
    }

    // readonly: posts across the chain heads this region directly owns.
    fn stats(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut total = 0i64;
        for user in inv.children(Some("User"))? {
            total += inv
                .call(user, "post_count", args![])?
                .as_i64()
                .ok_or_else(|| AeonError::app("user returned a non-integer"))?;
        }
        Ok(Value::from(total))
    }
}

context_class! {
    Region: "Region" {
        ro method "user_count" calls [] => Region::user_count,
        ro method "stats" calls ["User::post_count"] => Region::stats,
    }
}

// ---------------------------------------------------------------------------
// Zipf sampler
// ---------------------------------------------------------------------------

/// A seeded Zipf(s) sampler over ranks `0..n` via a precomputed CDF table
/// and binary search.  Rank `r` has weight `1/(r+1)^s`, so `s = 0` is
/// uniform, and larger `s` concentrates mass on the lowest ranks.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler.
    ///
    /// # Errors
    ///
    /// [`AeonError::Config`] when `n` is zero or `s` is negative or not
    /// finite.
    pub fn new(n: usize, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(AeonError::Config(
                "zipf sampler needs at least one rank".into(),
            ));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(AeonError::Config(format!(
                "zipf exponent must be finite and non-negative, got {s}"
            )));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            // (rank+1) >= 1, so the power never divides by zero.
            acc += ((rank + 1) as f64).powf(s).recip();
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against float round-off at the top end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Ok(Self { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always `false`: construction rejects `n = 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a rank (deterministic).
    pub fn sample_with(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        self.sample_with(rng.gen_range(0.0..1.0))
    }
}

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// Shape and skew knobs of the social workload.
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Number of region roots.
    pub regions: usize,
    /// Total users across all regions (each user also gets one feed, so a
    /// deployment holds `regions + 2 * users` contexts).
    pub users: usize,
    /// Maximum invitation-chain length: users deeper than this start a new
    /// chain directly under their region.
    pub chain_depth: usize,
    /// Feeds each user follows (targets are Zipf-sampled celebrities in
    /// the same region; the realised count can be smaller after
    /// deduplication).
    pub follows_per_user: usize,
    /// Skew of both the follow graph and the request stream.
    pub zipf_s: f64,
    /// Ring-buffer cap per feed: what bounds memory at full scale.
    pub feed_capacity: usize,
    /// Seed of the graph shape (request streams take their own seed).
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        Self {
            regions: 2,
            users: 64,
            chain_depth: 8,
            follows_per_user: 3,
            zipf_s: 1.1,
            feed_capacity: 8,
            seed: 0x50c1a1,
        }
    }
}

impl SocialConfig {
    /// Contexts a deployment of this config creates.
    pub fn total_contexts(&self) -> usize {
        self.regions + 2 * self.users
    }
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocialOp {
    /// `user` posts `payload` into its feed (mutating; sequenced at the
    /// feed's dominator, which is hot for celebrities).
    Post {
        /// Author index into [`SocialWorld::users`].
        user: u32,
        /// Post payload.
        payload: i64,
    },
    /// `user` reads its timeline (read-only; touches every followed feed).
    Timeline {
        /// Reader index.
        user: u32,
    },
    /// Directory-style read of `user`'s feed length.
    FeedLen {
        /// Feed owner index.
        user: u32,
    },
}

/// The deterministic graph shape: pure data, independent of any backend.
#[derive(Debug, Clone)]
pub struct SocialPlan {
    /// The config this plan was generated from.
    pub config: SocialConfig,
    /// Region index of each user.
    pub region_of: Vec<u32>,
    /// Inviting user of each user (`None` for chain heads owned directly
    /// by their region).  Always a smaller user index, so the instance
    /// graph is acyclic by construction.
    pub inviter_of: Vec<Option<u32>>,
    /// Followed users of each user: same region, never the user itself,
    /// deduplicated and sorted.
    pub follows: Vec<Vec<u32>>,
}

/// Generates the graph shape from the config, deterministically.
pub fn generate_plan(config: &SocialConfig) -> SocialPlan {
    let regions = config.regions.max(1);
    let chain = config.chain_depth.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut region_of = Vec::with_capacity(config.users);
    let mut inviter_of = Vec::with_capacity(config.users);
    let mut follows = Vec::with_capacity(config.users);
    // User i lives in region i % regions at in-region position i / regions;
    // a position that is a multiple of `chain_depth` starts a new chain.
    for i in 0..config.users {
        let region = i % regions;
        let position = i / regions;
        region_of.push(region as u32);
        inviter_of.push(if position.is_multiple_of(chain) {
            None
        } else {
            Some((i - regions) as u32)
        });
    }
    // Zipf sampler per distinct region population (region sizes differ by
    // at most one).
    let size_of = |region: usize| (config.users + regions - 1 - region) / regions;
    let samplers: Vec<Option<ZipfSampler>> = (0..regions)
        .map(|r| {
            let n = size_of(r);
            (n > 0).then(|| ZipfSampler::new(n, config.zipf_s).expect("n >= 1, s validated"))
        })
        .collect();
    for i in 0..config.users {
        let region = i % regions;
        let mut chosen = BTreeSet::new();
        if let Some(sampler) = &samplers[region] {
            // Bounded attempts: rejecting self-follows can starve in tiny
            // regions, so the realised follow count may be smaller.
            for _ in 0..config.follows_per_user.saturating_mul(3) {
                if chosen.len() >= config.follows_per_user {
                    break;
                }
                let rank = sampler.sample(&mut rng);
                let target = rank * regions + region;
                if target != i {
                    chosen.insert(target as u32);
                }
            }
        }
        follows.push(chosen.into_iter().collect());
    }
    SocialPlan {
        config: config.clone(),
        region_of,
        inviter_of,
        follows,
    }
}

impl SocialPlan {
    /// Generates a Zipf-skewed request stream: ~60% posts by Zipf-ranked
    /// authors (rank 0 = the hottest celebrity), ~30% uniform timeline
    /// reads, ~10% Zipf-ranked feed-length probes.
    pub fn request_stream(&self, events: usize, seed: u64) -> Vec<SocialOp> {
        if self.config.users == 0 {
            return Vec::new();
        }
        let sampler = ZipfSampler::new(self.config.users, self.config.zipf_s)
            .expect("users >= 1, s validated");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..events)
            .map(|i| {
                let kind = rng.gen_range(0..10u32);
                if kind < 6 {
                    SocialOp::Post {
                        user: sampler.sample(&mut rng) as u32,
                        payload: i as i64,
                    }
                } else if kind < 9 {
                    SocialOp::Timeline {
                        user: rng.gen_range(0..self.config.users) as u32,
                    }
                } else {
                    SocialOp::FeedLen {
                        user: sampler.sample(&mut rng) as u32,
                    }
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Deployment driver
// ---------------------------------------------------------------------------

/// Context ids of a deployed social graph.
#[derive(Debug, Clone)]
pub struct SocialWorld {
    /// The generated shape.
    pub plan: SocialPlan,
    /// Region roots.
    pub regions: Vec<ContextId>,
    /// Users, in plan order.
    pub users: Vec<ContextId>,
    /// Each user's own feed, in plan order.
    pub feeds: Vec<ContextId>,
}

impl SocialWorld {
    /// The hottest contexts under the Zipf stream: the region roots (the
    /// dominators of celebrity feeds) plus the lowest-ranked users and
    /// their feeds.  These are the live-migration victims of the chaos
    /// scenario.
    pub fn hot_dominators(&self, celebrities: usize) -> Vec<ContextId> {
        let mut hot = self.regions.clone();
        for i in 0..celebrities.min(self.users.len()) {
            hot.push(self.users[i]);
            hot.push(self.feeds[i]);
        }
        hot
    }

    /// A deterministic digest of the final graph state, independent of the
    /// backend's context-id assignment: per-user post counts and timeline
    /// sums, per-feed lengths and payload sums, per-region stats.  Equal
    /// digests mean equal final states.
    pub fn digest(&self, session: &dyn Session) -> Result<Vec<i64>> {
        let mut out = Vec::with_capacity(4 * self.users.len() + self.regions.len());
        for user in &self.users {
            out.push(
                session
                    .call_readonly(*user, "post_count", args![])?
                    .as_i64()
                    .ok_or_else(|| AeonError::app("post_count returned a non-integer"))?,
            );
            out.push(
                session
                    .call_readonly(*user, "timeline", args![])?
                    .as_i64()
                    .ok_or_else(|| AeonError::app("timeline returned a non-integer"))?,
            );
        }
        for feed in &self.feeds {
            out.push(
                session
                    .call_readonly(*feed, "len", args![])?
                    .as_i64()
                    .ok_or_else(|| AeonError::app("len returned a non-integer"))?,
            );
            out.push(
                session
                    .call_readonly(*feed, "sum", args![])?
                    .as_i64()
                    .ok_or_else(|| AeonError::app("sum returned a non-integer"))?,
            );
        }
        for region in &self.regions {
            out.push(
                session
                    .call_readonly(*region, "stats", args![])?
                    .as_i64()
                    .ok_or_else(|| AeonError::app("stats returned a non-integer"))?,
            );
        }
        Ok(out)
    }
}

/// Generates a plan from `config` and deploys it.
///
/// # Errors
///
/// Propagates context-creation and setup-event errors.
pub fn deploy_social(deployment: &dyn Deployment, config: &SocialConfig) -> Result<SocialWorld> {
    deploy_social_plan(deployment, generate_plan(config))
}

/// Deploys an already-generated plan onto any backend.
///
/// # Errors
///
/// Propagates context-creation and setup-event errors.
pub fn deploy_social_plan(deployment: &dyn Deployment, plan: SocialPlan) -> Result<SocialWorld> {
    let regions: Vec<ContextId> = (0..plan.config.regions.max(1))
        .map(|_| deployment.create_context(Box::new(Region), Placement::Auto))
        .collect::<Result<_>>()?;
    let mut users = Vec::with_capacity(plan.config.users);
    let mut feeds = Vec::with_capacity(plan.config.users);
    for i in 0..plan.config.users {
        // The inviter always has a smaller index, so it already exists;
        // the feed co-locates with its user (first owner wins placement).
        let owner = match plan.inviter_of[i] {
            Some(inviter) => users[inviter as usize],
            None => regions[plan.region_of[i] as usize],
        };
        let user = deployment.create_owned_context(Box::new(User::default()), &[owner])?;
        let feed = deployment
            .create_owned_context(Box::new(Feed::new(plan.config.feed_capacity)), &[user])?;
        users.push(user);
        feeds.push(feed);
    }
    let session = deployment.session();
    for i in 0..plan.config.users {
        let followed: Vec<ContextId> = plan.follows[i].iter().map(|&t| feeds[t as usize]).collect();
        for feed in &followed {
            deployment.add_ownership(users[i], *feed)?;
        }
        session.call(
            users[i],
            "setup",
            args![
                feeds[i],
                Value::List(followed.into_iter().map(Value::ContextRef).collect())
            ],
        )?;
    }
    Ok(SocialWorld {
        plan,
        regions,
        users,
        feeds,
    })
}

/// Counters of one applied request stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocialStreamReport {
    /// Posts applied.
    pub posts: u64,
    /// Read-only events applied (timelines + feed-length probes).
    pub reads: u64,
}

/// Applies `ops` serially through one session; the deterministic leg the
/// parity and replay tests compare across backends.
///
/// # Errors
///
/// Propagates the first event error.
pub fn run_social_stream(
    session: &dyn Session,
    world: &SocialWorld,
    ops: &[SocialOp],
) -> Result<SocialStreamReport> {
    let mut report = SocialStreamReport::default();
    for op in ops {
        match *op {
            SocialOp::Post { user, payload } => {
                session.call(world.users[user as usize], "post", args![payload])?;
                report.posts += 1;
            }
            SocialOp::Timeline { user } => {
                session.call_readonly(world.users[user as usize], "timeline", args![])?;
                report.reads += 1;
            }
            SocialOp::FeedLen { user } => {
                session.call_readonly(world.feeds[user as usize], "len", args![])?;
                report.reads += 1;
            }
        }
    }
    Ok(report)
}

/// Registers snapshot factories for the social classes, so migration and
/// crash re-hosting work on backends that rebuild objects from serialised
/// state.
pub fn register_social_factories(deployment: &dyn Deployment) {
    deployment.register_class_factory(
        "Feed",
        Arc::new(|state: &Value| {
            let mut feed = Feed::default();
            ContextObject::restore(&mut feed, state);
            Box::new(feed) as Box<dyn ContextObject>
        }),
    );
    deployment.register_class_factory(
        "User",
        Arc::new(|state: &Value| {
            let mut user = User::default();
            ContextObject::restore(&mut user, state);
            Box::new(user) as Box<dyn ContextObject>
        }),
    );
    deployment.register_class_factory(
        "Region",
        Arc::new(|_state: &Value| Box::new(Region) as Box<dyn ContextObject>),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::AeonRuntime;

    fn tiny_config() -> SocialConfig {
        SocialConfig {
            regions: 2,
            users: 12,
            chain_depth: 3,
            follows_per_user: 2,
            zipf_s: 1.0,
            feed_capacity: 4,
            seed: 7,
        }
    }

    #[test]
    fn plans_are_deterministic_and_well_formed() {
        let config = tiny_config();
        let a = generate_plan(&config);
        let b = generate_plan(&config);
        assert_eq!(a.inviter_of, b.inviter_of);
        assert_eq!(a.follows, b.follows);
        for (i, inviter) in a.inviter_of.iter().enumerate() {
            if let Some(inviter) = inviter {
                assert!((*inviter as usize) < i, "inviter precedes the invitee");
                assert_eq!(a.region_of[*inviter as usize], a.region_of[i]);
            }
            for &t in &a.follows[i] {
                assert_ne!(t as usize, i, "no self-follows");
                assert_eq!(a.region_of[t as usize], a.region_of[i]);
            }
        }
        assert_eq!(
            a.request_stream(100, 11),
            b.request_stream(100, 11),
            "request streams replay deterministically"
        );
    }

    #[test]
    fn posts_land_in_feeds_and_timelines_see_follows() {
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(social_class_graph())
            .build()
            .unwrap();
        let config = tiny_config();
        let world = deploy_social(&runtime, &config).unwrap();
        assert_eq!(runtime.context_count(), config.total_contexts());
        let session = Deployment::session(&runtime);
        session.call(world.users[0], "post", args![41i64]).unwrap();
        session.call(world.users[0], "post", args![42i64]).unwrap();
        assert_eq!(
            session
                .call_readonly(world.feeds[0], "latest", args![])
                .unwrap(),
            Value::from(42i64)
        );
        // Any follower of user 0 sees 42 in its timeline sum.
        if let Some(follower) = (0..config.users).find(|&i| world.plan.follows[i].contains(&0)) {
            let timeline = session
                .call_readonly(world.users[follower], "timeline", args![])
                .unwrap()
                .as_i64()
                .unwrap();
            assert!(timeline >= 42, "timeline {timeline} includes the celebrity");
        }
        runtime.shutdown();
    }

    #[test]
    fn feed_capacity_bounds_memory() {
        let runtime = AeonRuntime::builder()
            .class_graph(social_class_graph())
            .build()
            .unwrap();
        let config = SocialConfig {
            users: 1,
            regions: 1,
            feed_capacity: 4,
            ..tiny_config()
        };
        let world = deploy_social(&runtime, &config).unwrap();
        let session = Deployment::session(&runtime);
        for payload in 0..32i64 {
            session
                .call(world.users[0], "post", args![payload])
                .unwrap();
        }
        assert_eq!(
            session
                .call_readonly(world.feeds[0], "len", args![])
                .unwrap(),
            Value::from(4i64)
        );
        runtime.shutdown();
    }

    #[test]
    fn zipf_is_skewed_and_uniform_at_zero() {
        let zipf = ZipfSampler::new(100, 1.2).unwrap();
        assert!(zipf.pmf(0) > zipf.pmf(1));
        assert!(zipf.pmf(1) > zipf.pmf(50));
        let uniform = ZipfSampler::new(10, 0.0).unwrap();
        for rank in 0..10 {
            assert!((uniform.pmf(rank) - 0.1).abs() < 1e-9);
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }
}
