//! Distributed data structures built from contexts.
//!
//! §3 of the paper motivates the *reflexive* exception of the contextclass
//! analysis ("this exception ... allows for the construction of inductive
//! data structures like linked-lists, or trees") and §2.1 calls out that
//! EventWave cannot express them because its ownership structure is a fixed
//! tree.  This module implements two such structures as declarative
//! contextclasses, so every node is an independently migratable context
//! and every operation is an atomic event:
//!
//! * [`ListSet`] — a sorted singly linked list set: `ListSet` owns the head
//!   `ListNode`, every `ListNode` owns its successor (reflexive ownership);
//! * [`SearchTree`] — a binary search tree of `TreeNode` contexts (the
//!   paper's "trees"; a balanced B-tree would follow the same pattern with
//!   wider nodes).
//!
//! Both mutate the ownership graph at runtime (splicing a node out of the
//! list, attaching tree children), exercising `create_child`,
//! `add_ownership` and `remove_ownership` from inside events.

use aeon_api::{Deployment, Placement};
use aeon_ownership::ClassGraph;
use aeon_runtime::{context_class, AeonRuntime, ContextClass, Invocation};
use aeon_types::{args, Args, ContextId, Result, Value};

/// Class constraints of the collection structures (note the reflexive
/// `ListNode ≤ ListNode` and `TreeNode ≤ TreeNode` edges the analysis
/// permits), with the method metadata declared from the method tables.
pub fn collections_class_graph() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("ListSet", "ListNode");
    classes.add_constraint("ListNode", "ListNode");
    classes.add_constraint("SearchTree", "TreeNode");
    classes.add_constraint("TreeNode", "TreeNode");
    ListSet::table().declare_in(&mut classes);
    ListNode::table().declare_in(&mut classes);
    SearchTree::table().declare_in(&mut classes);
    TreeNode::table().declare_in(&mut classes);
    classes
}

// ---------------------------------------------------------------------------
// Linked list set
// ---------------------------------------------------------------------------

/// Head context of a sorted linked list set of integers.
///
/// Methods: `insert(key) -> bool`, `remove(key) -> bool`,
/// `contains(key) -> bool` *(readonly)*, `len -> int` *(readonly)*,
/// `to_list -> [int]` *(readonly)*.
#[derive(Debug, Default)]
pub struct ListSet {
    head: Option<ContextId>,
    len: i64,
}

impl ListSet {
    /// Creates an empty list set.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        match self.head {
            None => {
                let node = inv.create_child(Box::new(ListNode::new(key)))?;
                self.head = Some(node);
                self.len += 1;
                Ok(Value::from(true))
            }
            Some(head) => {
                // A smaller key becomes the new head, owning the old one.
                let head_key = inv.call(head, "key", args![])?.as_i64().unwrap_or(0);
                if key < head_key {
                    let node = inv.create_child(Box::new(ListNode::new(key)))?;
                    inv.call(node, "set_next", args![head])?;
                    inv.remove_ownership(head)?;
                    self.head = Some(node);
                    self.len += 1;
                    return Ok(Value::from(true));
                }
                if key == head_key {
                    return Ok(Value::from(false));
                }
                let inserted = inv.call(head, "insert_after", args![key])?;
                if inserted.as_bool().unwrap_or(false) {
                    self.len += 1;
                }
                Ok(inserted)
            }
        }
    }

    fn remove(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        let Some(head) = self.head else {
            return Ok(Value::from(false));
        };
        let head_key = inv.call(head, "key", args![])?.as_i64().unwrap_or(0);
        if key == head_key {
            // Splice the head out: adopt its successor, then detach and
            // disown the removed node.
            let next = inv.call(head, "next", args![])?;
            match next.as_context() {
                Some(next_id) => {
                    inv.add_ownership(next_id)?;
                    self.head = Some(next_id);
                }
                None => self.head = None,
            }
            inv.call(head, "detach", args![])?;
            inv.remove_ownership(head)?;
            self.len -= 1;
            return Ok(Value::from(true));
        }
        let removed = inv.call(head, "remove_after", args![key])?;
        if removed.as_bool().unwrap_or(false) {
            self.len -= 1;
        }
        Ok(removed)
    }

    fn contains(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        match self.head {
            None => Ok(Value::from(false)),
            Some(head) => inv.call(head, "find", args![key]),
        }
    }

    fn len(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.len))
    }

    fn collect_values(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match self.head {
            None => Ok(Value::List(Vec::new())),
            Some(head) => inv.call(head, "collect", args![]),
        }
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            (
                "head",
                self.head.map(Value::ContextRef).unwrap_or(Value::Null),
            ),
            ("len", Value::from(self.len)),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.head = state.get("head").and_then(Value::as_context);
        if let Some(len) = state.get("len").and_then(Value::as_i64) {
            self.len = len;
        }
    }
}

context_class! {
    ListSet: "ListSet" {
        method "insert" calls ["ListNode::key", "ListNode::set_next", "ListNode::insert_after"] => ListSet::insert,
        method "remove" calls ["ListNode::key", "ListNode::next", "ListNode::detach", "ListNode::remove_after"] => ListSet::remove,
        ro method "contains" calls ["ListNode::find"] => ListSet::contains,
        ro method "len" calls [] => ListSet::len,
        ro method "to_list" calls ["ListNode::collect"] => ListSet::collect_values,
    }
    snapshot = ListSet::snapshot_state;
    restore = ListSet::restore_state;
}

/// One node of a [`ListSet`].
#[derive(Debug)]
pub struct ListNode {
    key: i64,
    next: Option<ContextId>,
}

impl ListNode {
    /// Creates a node holding `key` with no successor.
    pub fn new(key: i64) -> Self {
        Self { key, next: None }
    }

    fn key(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.key))
    }

    fn next(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(self.next.map(Value::ContextRef).unwrap_or(Value::Null))
    }

    /// Adopts `next`: records the successor and takes an ownership edge to
    /// it so later traversals from this node are legal calls.
    fn set_next(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let next = args.get(0).and_then(Value::as_context);
        if let Some(next) = next {
            inv.add_ownership(next)?;
        }
        self.next = next;
        Ok(Value::Null)
    }

    /// Detaches the successor: clears the field and drops the ownership
    /// edge (used when this node is spliced out).
    fn detach(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        if let Some(next) = self.next.take() {
            inv.remove_ownership(next)?;
        }
        Ok(Value::Null)
    }

    /// Inserts `key` somewhere after this node; returns whether the set
    /// changed.
    fn insert_after(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        debug_assert!(key > self.key);
        match self.next {
            None => {
                let node = inv.create_child(Box::new(ListNode::new(key)))?;
                self.next = Some(node);
                Ok(Value::from(true))
            }
            Some(next) => {
                let next_key = inv.call(next, "key", args![])?.as_i64().unwrap_or(0);
                if key == next_key {
                    Ok(Value::from(false))
                } else if key < next_key {
                    let node = inv.create_child(Box::new(ListNode::new(key)))?;
                    inv.call(node, "set_next", args![next])?;
                    inv.remove_ownership(next)?;
                    self.next = Some(node);
                    Ok(Value::from(true))
                } else {
                    inv.call(next, "insert_after", args![key])
                }
            }
        }
    }

    /// Removes `key` from the suffix after this node.
    fn remove_after(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        let Some(next) = self.next else {
            return Ok(Value::from(false));
        };
        let next_key = inv.call(next, "key", args![])?.as_i64().unwrap_or(0);
        if key == next_key {
            let after = inv.call(next, "next", args![])?;
            match after.as_context() {
                Some(after_id) => {
                    inv.add_ownership(after_id)?;
                    self.next = Some(after_id);
                }
                None => self.next = None,
            }
            inv.call(next, "detach", args![])?;
            inv.remove_ownership(next)?;
            Ok(Value::from(true))
        } else if key < next_key {
            Ok(Value::from(false))
        } else {
            inv.call(next, "remove_after", args![key])
        }
    }

    /// Readonly search.
    fn find(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        if key == self.key {
            return Ok(Value::from(true));
        }
        if key < self.key {
            return Ok(Value::from(false));
        }
        match self.next {
            None => Ok(Value::from(false)),
            Some(next) => inv.call(next, "find", args![key]),
        }
    }

    /// Readonly traversal.
    fn collect(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut values = vec![Value::from(self.key)];
        if let Some(next) = self.next {
            if let Value::List(rest) = inv.call(next, "collect", args![])? {
                values.extend(rest);
            }
        }
        Ok(Value::List(values))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            ("key", Value::from(self.key)),
            (
                "next",
                self.next.map(Value::ContextRef).unwrap_or(Value::Null),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        if let Some(key) = state.get("key").and_then(Value::as_i64) {
            self.key = key;
        }
        self.next = state.get("next").and_then(Value::as_context);
    }
}

context_class! {
    ListNode: "ListNode" {
        ro method "key" calls [] => ListNode::key,
        ro method "next" calls [] => ListNode::next,
        method "set_next" calls [] => ListNode::set_next,
        method "detach" calls [] => ListNode::detach,
        method "insert_after" calls ["ListNode::key", "ListNode::set_next", "ListNode::insert_after"] => ListNode::insert_after,
        method "remove_after" calls ["ListNode::key", "ListNode::next", "ListNode::detach", "ListNode::remove_after"] => ListNode::remove_after,
        ro method "find" calls ["ListNode::find"] => ListNode::find,
        ro method "collect" calls ["ListNode::collect"] => ListNode::collect,
    }
    snapshot = ListNode::snapshot_state;
    restore = ListNode::restore_state;
}

// ---------------------------------------------------------------------------
// Binary search tree
// ---------------------------------------------------------------------------

/// Root context of a binary search tree of integers.
///
/// Methods: `insert(key) -> bool`, `contains(key) -> bool` *(readonly)*,
/// `min -> int|null` *(readonly)*, `size -> int` *(readonly)*,
/// `in_order -> [int]` *(readonly)*.
#[derive(Debug, Default)]
pub struct SearchTree {
    root: Option<ContextId>,
    size: i64,
}

impl SearchTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        match self.root {
            None => {
                let node = inv.create_child(Box::new(TreeNode::new(key)))?;
                self.root = Some(node);
                self.size += 1;
                Ok(Value::from(true))
            }
            Some(root) => {
                let inserted = inv.call(root, "insert", args![key])?;
                if inserted.as_bool().unwrap_or(false) {
                    self.size += 1;
                }
                Ok(inserted)
            }
        }
    }

    fn contains(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match self.root {
            None => Ok(Value::from(false)),
            Some(root) => {
                let key = args.get_i64(0)?;
                inv.call(root, "contains", args![key])
            }
        }
    }

    fn min(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match self.root {
            None => Ok(Value::Null),
            Some(root) => inv.call(root, "min", args![]),
        }
    }

    fn size(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.size))
    }

    fn in_order(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match self.root {
            None => Ok(Value::List(Vec::new())),
            Some(root) => inv.call(root, "in_order", args![]),
        }
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            (
                "root",
                self.root.map(Value::ContextRef).unwrap_or(Value::Null),
            ),
            ("size", Value::from(self.size)),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        self.root = state.get("root").and_then(Value::as_context);
        if let Some(size) = state.get("size").and_then(Value::as_i64) {
            self.size = size;
        }
    }
}

context_class! {
    SearchTree: "SearchTree" {
        method "insert" calls ["TreeNode::insert"] => SearchTree::insert,
        ro method "contains" calls ["TreeNode::contains"] => SearchTree::contains,
        ro method "min" calls ["TreeNode::min"] => SearchTree::min,
        ro method "size" calls [] => SearchTree::size,
        ro method "in_order" calls ["TreeNode::in_order"] => SearchTree::in_order,
    }
    snapshot = SearchTree::snapshot_state;
    restore = SearchTree::restore_state;
}

/// One node of a [`SearchTree`].
#[derive(Debug)]
pub struct TreeNode {
    key: i64,
    left: Option<ContextId>,
    right: Option<ContextId>,
}

impl TreeNode {
    /// Creates a leaf node holding `key`.
    pub fn new(key: i64) -> Self {
        Self {
            key,
            left: None,
            right: None,
        }
    }

    fn insert(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        if key == self.key {
            return Ok(Value::from(false));
        }
        let slot = if key < self.key {
            self.left
        } else {
            self.right
        };
        match slot {
            None => {
                let node = inv.create_child(Box::new(TreeNode::new(key)))?;
                if key < self.key {
                    self.left = Some(node);
                } else {
                    self.right = Some(node);
                }
                Ok(Value::from(true))
            }
            Some(child) => inv.call(child, "insert", args![key]),
        }
    }

    fn contains(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_i64(0)?;
        if key == self.key {
            return Ok(Value::from(true));
        }
        let child = if key < self.key {
            self.left
        } else {
            self.right
        };
        match child {
            None => Ok(Value::from(false)),
            Some(child) => inv.call(child, "contains", args![key]),
        }
    }

    fn min(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match self.left {
            None => Ok(Value::from(self.key)),
            Some(left) => inv.call(left, "min", args![]),
        }
    }

    fn in_order(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut values = Vec::new();
        if let Some(left) = self.left {
            if let Value::List(l) = inv.call(left, "in_order", args![])? {
                values.extend(l);
            }
        }
        values.push(Value::from(self.key));
        if let Some(right) = self.right {
            if let Value::List(r) = inv.call(right, "in_order", args![])? {
                values.extend(r);
            }
        }
        Ok(Value::List(values))
    }

    fn snapshot_state(&self) -> Value {
        Value::map([
            ("key", Value::from(self.key)),
            (
                "left",
                self.left.map(Value::ContextRef).unwrap_or(Value::Null),
            ),
            (
                "right",
                self.right.map(Value::ContextRef).unwrap_or(Value::Null),
            ),
        ])
    }

    fn restore_state(&mut self, state: &Value) {
        if let Some(key) = state.get("key").and_then(Value::as_i64) {
            self.key = key;
        }
        self.left = state.get("left").and_then(Value::as_context);
        self.right = state.get("right").and_then(Value::as_context);
    }
}

context_class! {
    TreeNode: "TreeNode" {
        method "insert" calls ["TreeNode::insert"] => TreeNode::insert,
        ro method "contains" calls ["TreeNode::contains"] => TreeNode::contains,
        ro method "min" calls ["TreeNode::min"] => TreeNode::min,
        ro method "in_order" calls ["TreeNode::in_order"] => TreeNode::in_order,
    }
    snapshot = TreeNode::snapshot_state;
    restore = TreeNode::restore_state;
}

/// Convenience: creates a runtime configured for the collection structures.
///
/// # Errors
///
/// Propagates [`aeon_runtime::RuntimeBuilder::build`] errors.
pub fn collections_runtime(servers: usize) -> Result<AeonRuntime> {
    AeonRuntime::builder()
        .servers(servers.max(1))
        .class_graph(collections_class_graph())
        .build()
}

/// Deploys an empty [`ListSet`] on any backend and returns its context id.
///
/// # Errors
///
/// Propagates context-creation errors.
pub fn deploy_list_set(deployment: &dyn Deployment) -> Result<ContextId> {
    deployment.create_context(Box::new(ListSet::new()), Placement::Auto)
}

/// Deploys an empty [`SearchTree`] on any backend and returns its context
/// id.
///
/// # Errors
///
/// Propagates context-creation errors.
pub fn deploy_search_tree(deployment: &dyn Deployment) -> Result<ContextId> {
    deployment.create_context(Box::new(SearchTree::new()), Placement::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_api::Session;
    use aeon_runtime::ContextObject;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn list_values(v: &Value) -> Vec<i64> {
        v.as_list()
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_i64)
            .collect()
    }

    #[test]
    fn class_graph_permits_reflexive_ownership() {
        let classes = collections_class_graph();
        classes.check().unwrap();
        assert!(classes.allows("ListNode", "ListNode"));
        assert!(classes.allows("TreeNode", "TreeNode"));
        assert!(!classes.allows("ListNode", "ListSet"));
        assert_eq!(classes.readonly_method("ListSet", "contains"), Some(true));
        assert_eq!(classes.readonly_method("ListNode", "set_next"), Some(false));
    }

    #[test]
    fn list_set_inserts_in_sorted_order_without_duplicates() {
        let runtime = collections_runtime(2).unwrap();
        let list = deploy_list_set(&runtime).unwrap();
        let client = runtime.client();
        for key in [5i64, 1, 9, 5, 3, 9, 7] {
            client.call(list, "insert", args![key]).unwrap();
        }
        assert_eq!(
            client.call_readonly(list, "len", args![]).unwrap(),
            Value::from(5i64)
        );
        let values = client.call_readonly(list, "to_list", args![]).unwrap();
        assert_eq!(list_values(&values), vec![1, 3, 5, 7, 9]);
        assert_eq!(
            client.call_readonly(list, "contains", args![7i64]).unwrap(),
            Value::from(true)
        );
        assert_eq!(
            client.call_readonly(list, "contains", args![8i64]).unwrap(),
            Value::from(false)
        );
    }

    #[test]
    fn list_set_removals_splice_nodes_out() {
        let runtime = collections_runtime(1).unwrap();
        let list = deploy_list_set(&runtime).unwrap();
        let client = runtime.client();
        for key in 1..=6i64 {
            client.call(list, "insert", args![key]).unwrap();
        }
        // Remove the head, a middle element, and the tail.
        for key in [1i64, 4, 6] {
            assert_eq!(
                client.call(list, "remove", args![key]).unwrap(),
                Value::from(true)
            );
        }
        assert_eq!(
            client.call(list, "remove", args![42i64]).unwrap(),
            Value::from(false)
        );
        let values = client.call_readonly(list, "to_list", args![]).unwrap();
        assert_eq!(list_values(&values), vec![2, 3, 5]);
        assert_eq!(
            client.call_readonly(list, "len", args![]).unwrap(),
            Value::from(3i64)
        );
    }

    #[test]
    fn list_set_operations_are_atomic_under_concurrency() {
        let runtime = collections_runtime(2).unwrap();
        let list = deploy_list_set(&runtime).unwrap();
        let runtime = std::sync::Arc::new(runtime);
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let runtime = std::sync::Arc::clone(&runtime);
            handles.push(std::thread::spawn(move || {
                let client = runtime.client();
                for i in 0..25i64 {
                    client.call(list, "insert", args![t * 25 + i]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let client = runtime.client();
        assert_eq!(
            client.call_readonly(list, "len", args![]).unwrap(),
            Value::from(100i64)
        );
        let values = client.call_readonly(list, "to_list", args![]).unwrap();
        let values = list_values(&values);
        assert_eq!(values.len(), 100);
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "list stays sorted and duplicate free"
        );
    }

    #[test]
    fn search_tree_insert_and_lookup() {
        let runtime = collections_runtime(1).unwrap();
        let tree = deploy_search_tree(&runtime).unwrap();
        let client = runtime.client();
        for key in [50i64, 30, 70, 20, 40, 60, 80, 30] {
            client.call(tree, "insert", args![key]).unwrap();
        }
        assert_eq!(
            client.call_readonly(tree, "size", args![]).unwrap(),
            Value::from(7i64)
        );
        assert_eq!(
            client.call_readonly(tree, "min", args![]).unwrap(),
            Value::from(20i64)
        );
        assert_eq!(
            client
                .call_readonly(tree, "contains", args![60i64])
                .unwrap(),
            Value::from(true)
        );
        assert_eq!(
            client
                .call_readonly(tree, "contains", args![65i64])
                .unwrap(),
            Value::from(false)
        );
        let values = client.call_readonly(tree, "in_order", args![]).unwrap();
        assert_eq!(list_values(&values), vec![20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn structures_snapshot_and_restore() {
        let mut node = ListNode::new(7);
        node.next = Some(ContextId::new(9));
        let snap = ContextObject::snapshot(&node);
        let mut copy = ListNode::new(0);
        ContextObject::restore(&mut copy, &snap);
        assert_eq!(copy.key, 7);
        assert_eq!(copy.next, Some(ContextId::new(9)));

        let mut tree = TreeNode::new(3);
        tree.left = Some(ContextId::new(1));
        let snap = ContextObject::snapshot(&tree);
        let mut copy = TreeNode::new(0);
        ContextObject::restore(&mut copy, &snap);
        assert_eq!(copy.key, 3);
        assert_eq!(copy.left, Some(ContextId::new(1)));
        assert_eq!(copy.right, None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_list_set_matches_btreeset(keys in proptest::collection::vec(-50i64..50, 1..40)) {
            let runtime = collections_runtime(1).unwrap();
            let list = deploy_list_set(&runtime).unwrap();
            let client = runtime.client();
            let mut model = BTreeSet::new();
            for key in &keys {
                let inserted = client.call(list, "insert", args![*key]).unwrap();
                prop_assert_eq!(inserted, Value::from(model.insert(*key)));
            }
            let values = client.call_readonly(list, "to_list", args![]).unwrap();
            prop_assert_eq!(list_values(&values), model.iter().copied().collect::<Vec<_>>());
        }

        #[test]
        fn prop_tree_matches_btreeset(keys in proptest::collection::vec(-50i64..50, 1..40)) {
            let runtime = collections_runtime(1).unwrap();
            let tree = deploy_search_tree(&runtime).unwrap();
            let client = runtime.client();
            let mut model = BTreeSet::new();
            for key in &keys {
                let inserted = client.call(tree, "insert", args![*key]).unwrap();
                prop_assert_eq!(inserted, Value::from(model.insert(*key)));
            }
            let values = client.call_readonly(tree, "in_order", args![]).unwrap();
            prop_assert_eq!(list_values(&values), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(
                client.call_readonly(tree, "size", args![]).unwrap(),
                Value::from(model.len() as i64)
            );
        }
    }
}
