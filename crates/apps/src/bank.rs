//! A bank-transfer application, generic over the unified deployment API.
//!
//! Structure: a [`Bank`] root owns [`Branch`]es; each branch owns
//! [`Account`]s, and adjacent branches may *share* accounts
//! (multi-ownership, §3 of the paper), which forces events on those
//! branches to be sequenced at the bank-level dominator while events on
//! non-sharing branches keep their own sequencers.  That mix is exactly
//! what the coordinated snapshot freeze has to quiesce, so this workload
//! is the backbone of the chaos-serializability suite and the
//! backend-parity snapshot tests.
//!
//! Unlike `aeon_checker::bank` (which instruments its own contexts and is
//! tied to the in-process runtime), these contextclasses are plain
//! [`context_class!`] tables deployed through `&dyn Deployment`, so the
//! same bank runs on the runtime, the cluster, and the simulator; history
//! recording comes from the backend's installed history sink, not from the
//! application.
//!
//! The key invariant: `transfer` moves money between two accounts inside
//! one event, so *any* consistent cut of the system conserves the total
//! balance.  A torn snapshot is precisely a cut that breaks it.

use aeon_api::Deployment;
use aeon_ownership::ClassGraph;
use aeon_runtime::{context_class, ContextClass, ContextObject, Invocation, Placement, Snapshot};
use aeon_types::{args, AeonError, Args, ContextId, Result, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Class constraints of the bank, with method metadata declared from the
/// tables.
pub fn bank_class_graph() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("Bank", "Branch");
    classes.add_constraint("Branch", "Account");
    Bank::table().declare_in(&mut classes);
    Branch::table().declare_in(&mut classes);
    Account::table().declare_in(&mut classes);
    classes
}

/// A single account: an integer balance.
#[derive(Debug, Default)]
pub struct Account {
    balance: i64,
}

impl Account {
    /// Creates an account holding `balance`.
    pub fn new(balance: i64) -> Self {
        Self { balance }
    }

    fn read(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(self.balance))
    }

    fn add(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.balance += args.get_i64(0)?;
        Ok(Value::from(self.balance))
    }

    fn write(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        self.balance = args.get_i64(0)?;
        Ok(Value::Null)
    }

    fn snapshot_state(&self) -> Value {
        Value::map([("balance", Value::from(self.balance))])
    }

    fn restore_state(&mut self, state: &Value) {
        self.balance = state.get("balance").and_then(Value::as_i64).unwrap_or(0);
    }
}

context_class! {
    Account: "Account" {
        ro method "read" calls [] => Account::read,
        method "add" calls [] => Account::add,
        method "write" calls [] => Account::write,
    }
    snapshot = Account::snapshot_state;
    restore = Account::restore_state;
}

/// A branch: moves money between the accounts it (co-)owns.
#[derive(Debug, Default)]
pub struct Branch;

impl Branch {
    // transfer(from_account, to_account, amount): both legs inside one
    // event, so the total is conserved at every consistent cut.
    fn transfer(&mut self, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let from = args.get_context(0)?;
        let to = args.get_context(1)?;
        let amount = args.get_i64(2)?;
        inv.call(from, "add", args![-amount])?;
        inv.call(to, "add", args![amount])?;
        Ok(Value::Null)
    }

    fn total(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut total = 0i64;
        for account in inv.children(Some("Account"))? {
            total += inv
                .call(account, "read", args![])?
                .as_i64()
                .ok_or_else(|| AeonError::app("account returned a non-integer"))?;
        }
        Ok(Value::from(total))
    }

    fn account_ids(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::List(
            inv.children(Some("Account"))?
                .into_iter()
                .map(Value::ContextRef)
                .collect(),
        ))
    }
}

context_class! {
    Branch: "Branch" {
        method "transfer" calls ["Account::add"] => Branch::transfer,
        ro method "total" calls ["Account::read"] => Branch::total,
        ro method "account_ids" calls [] => Branch::account_ids,
    }
}

/// The bank root: audits the whole tree read-only.
#[derive(Debug, Default)]
pub struct Bank;

impl Bank {
    // readonly: total money across every account.  Shared accounts have
    // two owning branches, so the audit deduplicates account ids first.
    fn audit(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        let mut seen = BTreeSet::new();
        let mut total = 0i64;
        for branch in inv.children(Some("Branch"))? {
            let ids = inv.call(branch, "account_ids", args![])?;
            for id in ids
                .as_list()
                .unwrap_or(&[])
                .iter()
                .filter_map(Value::as_context)
            {
                if seen.insert(id) {
                    total += inv
                        .call(id, "read", args![])?
                        .as_i64()
                        .ok_or_else(|| AeonError::app("account returned a non-integer"))?;
                }
            }
        }
        Ok(Value::from(total))
    }

    fn branch_count(&mut self, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::from(inv.children(Some("Branch"))?.len() as i64))
    }
}

context_class! {
    Bank: "Bank" {
        ro method "audit" calls ["Branch::account_ids", "Account::read"] => Bank::audit,
        ro method "branch_count" calls [] => Bank::branch_count,
    }
}

/// Shape of a deployed bank.
#[derive(Debug, Clone)]
pub struct BankWorldConfig {
    /// Number of branches.
    pub branches: usize,
    /// Accounts exclusively owned by each branch.
    pub accounts_per_branch: usize,
    /// Adjacent branch pairs `(0,1), (1,2), …` that share accounts; pairs
    /// beyond this count stay isolated, so the deployment mixes bank-level
    /// and branch-level dominators.
    pub shared_pairs: usize,
    /// Accounts shared by each sharing pair.
    pub shared_accounts: usize,
    /// Initial balance of every account.
    pub initial_balance: i64,
}

impl Default for BankWorldConfig {
    fn default() -> Self {
        Self {
            branches: 4,
            accounts_per_branch: 4,
            shared_pairs: 1,
            shared_accounts: 1,
            initial_balance: 100,
        }
    }
}

/// Context ids of a deployed bank.
#[derive(Debug, Clone)]
pub struct BankWorld {
    /// The root context.
    pub bank: ContextId,
    /// Branch contexts.
    pub branches: Vec<ContextId>,
    /// For each branch, the accounts it (co-)owns: exclusive first, then
    /// shared.
    pub accounts_of: Vec<Vec<ContextId>>,
    /// Every distinct account.
    pub accounts: Vec<ContextId>,
}

impl BankWorld {
    /// Total money in the system right after deployment.
    pub fn expected_total(&self, config: &BankWorldConfig) -> i64 {
        self.accounts.len() as i64 * config.initial_balance
    }
}

/// Deploys the bank onto any backend.
///
/// # Errors
///
/// Propagates context-creation errors (e.g. class-graph violations).
pub fn deploy_bank(deployment: &dyn Deployment, config: &BankWorldConfig) -> Result<BankWorld> {
    let bank = deployment.create_context(Box::new(Bank), Placement::Auto)?;
    let mut branches = Vec::with_capacity(config.branches);
    let mut accounts_of: Vec<Vec<ContextId>> = Vec::with_capacity(config.branches);
    let mut accounts = Vec::new();
    for _ in 0..config.branches {
        let branch = deployment.create_owned_context(Box::new(Branch), &[bank])?;
        branches.push(branch);
        accounts_of.push(Vec::new());
    }
    for (b, branch) in branches.iter().enumerate() {
        for _ in 0..config.accounts_per_branch {
            let account = deployment
                .create_owned_context(Box::new(Account::new(config.initial_balance)), &[*branch])?;
            accounts_of[b].push(account);
            accounts.push(account);
        }
    }
    for pair in 0..config.shared_pairs.min(config.branches.saturating_sub(1)) {
        for _ in 0..config.shared_accounts {
            let account = deployment.create_owned_context(
                Box::new(Account::new(config.initial_balance)),
                &[branches[pair], branches[pair + 1]],
            )?;
            accounts_of[pair].push(account);
            accounts_of[pair + 1].push(account);
            accounts.push(account);
        }
    }
    Ok(BankWorld {
        bank,
        branches,
        accounts_of,
        accounts,
    })
}

/// Sum of the account balances captured in a snapshot of (part of) a bank
/// subtree.  On a consistent cut this equals the deployment's
/// [`BankWorld::expected_total`]; the snapshot-freeze tests assert exactly
/// that.
pub fn captured_account_total(snapshot: &Snapshot) -> i64 {
    snapshot
        .entries()
        .filter(|(_, e)| e.class == "Account")
        .filter_map(|(_, e)| e.state.get("balance").and_then(Value::as_i64))
        .sum()
}

/// Registers snapshot factories for the bank classes, so migration and
/// crash re-hosting work on backends that rebuild objects from serialised
/// state.
pub fn register_bank_factories(deployment: &dyn Deployment) {
    deployment.register_class_factory(
        "Account",
        Arc::new(|state: &Value| {
            let mut account = Account::default();
            ContextObject::restore(&mut account, state);
            Box::new(account) as Box<dyn ContextObject>
        }),
    );
    deployment.register_class_factory(
        "Branch",
        Arc::new(|_state: &Value| Box::new(Branch) as Box<dyn ContextObject>),
    );
    deployment.register_class_factory(
        "Bank",
        Arc::new(|_state: &Value| Box::new(Bank) as Box<dyn ContextObject>),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_runtime::AeonRuntime;

    #[test]
    fn transfers_conserve_money_and_audit_deduplicates_shared_accounts() {
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        let config = BankWorldConfig::default();
        let world = deploy_bank(&runtime, &config).unwrap();
        let session = Deployment::session(&runtime);
        let expected = world.expected_total(&config);
        assert_eq!(
            session.call_readonly(world.bank, "audit", args![]).unwrap(),
            Value::from(expected)
        );
        let from = world.accounts_of[0][0];
        let to = *world.accounts_of[0].last().unwrap();
        session
            .call(world.branches[0], "transfer", args![from, to, 30i64])
            .unwrap();
        assert_eq!(
            session.call_readonly(world.bank, "audit", args![]).unwrap(),
            Value::from(expected)
        );
        assert_eq!(
            session.call_readonly(from, "read", args![]).unwrap(),
            Value::from(config.initial_balance - 30)
        );
        runtime.shutdown();
    }

    #[test]
    fn bank_world_shapes_follow_the_config() {
        let runtime = AeonRuntime::builder()
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        let config = BankWorldConfig {
            branches: 3,
            accounts_per_branch: 2,
            shared_pairs: 2,
            shared_accounts: 1,
            initial_balance: 10,
        };
        let world = deploy_bank(&runtime, &config).unwrap();
        assert_eq!(world.branches.len(), 3);
        assert_eq!(world.accounts.len(), 3 * 2 + 2);
        // Shared accounts appear in both neighbouring branches.
        assert_eq!(world.accounts_of[1].len(), 2 + 2);
        let session = Deployment::session(&runtime);
        assert_eq!(
            session
                .call_readonly(world.branches[1], "total", args![])
                .unwrap(),
            Value::from(40i64)
        );
        runtime.shutdown();
    }
}
