//! Behavioural tests of the AEON runtime: event execution, ownership
//! enforcement, read-only concurrency, sub-events, async calls, migration
//! and snapshots.

use aeon_api::Session;
use aeon_ownership::{ClassGraph, Dominator};
use aeon_runtime::{AeonRuntime, ContextObject, Invocation, KvContext, Placement};
use aeon_types::{args, AeonError, Args, ContextId, Result, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A player that owns a gold mine and a treasure item, mirroring Listing 1.
struct Player {
    gold_mine: Option<ContextId>,
    treasure: Option<ContextId>,
}

impl ContextObject for Player {
    fn class_name(&self) -> &str {
        "Player"
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "set_items" => {
                self.gold_mine = Some(args.get_context(0)?);
                self.treasure = Some(args.get_context(1)?);
                Ok(Value::Null)
            }
            // bool get_gold(int amt): take from the mine, put into treasure.
            "get_gold" => {
                let amount = args.get_i64(0)?;
                let mine = self.gold_mine.ok_or_else(|| AeonError::app("no mine"))?;
                let treasure = self.treasure.ok_or_else(|| AeonError::app("no treasure"))?;
                let available = inv.call(mine, "get", args!["gold"])?.as_i64().unwrap_or(0);
                if available < amount {
                    return Ok(Value::Bool(false));
                }
                inv.call(mine, "incr", args!["gold", -amount])?;
                inv.call(treasure, "incr", args!["gold", amount])?;
                Ok(Value::Bool(true))
            }
            "balance" => {
                let treasure = self.treasure.ok_or_else(|| AeonError::app("no treasure"))?;
                inv.call(treasure, "get", args!["gold"])
            }
            _ => Err(AeonError::UnknownMethod {
                class: "Player".into(),
                method: method.into(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "balance"
    }
}

fn game_classes() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.add_constraint("Room", "Player");
    classes.add_constraint("Room", "Item");
    classes.add_constraint("Player", "Item");
    classes
}

/// Builds a room with `players` players, each owning a private gold mine and
/// sharing a single treasure with the room and the other players.
fn build_room(runtime: &AeonRuntime, players: usize) -> (ContextId, Vec<ContextId>, ContextId) {
    let room = runtime
        .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
        .expect("room");
    let treasure = runtime
        .create_owned_context(
            Box::new(KvContext::with_entries(
                "Item",
                [("gold", Value::from(0i64))],
            )),
            &[room],
        )
        .expect("treasure");
    let mut ids = Vec::new();
    for _ in 0..players {
        let player = runtime
            .create_owned_context(
                Box::new(Player {
                    gold_mine: None,
                    treasure: None,
                }),
                &[room],
            )
            .expect("player");
        let mine = runtime
            .create_owned_context(
                Box::new(KvContext::with_entries(
                    "Item",
                    [("gold", Value::from(1000i64))],
                )),
                &[player],
            )
            .expect("mine");
        runtime
            .add_ownership(player, treasure)
            .expect("share treasure");
        let client = runtime.client();
        client
            .call(player, "set_items", args![mine, treasure])
            .expect("wire player items");
        ids.push(player);
    }
    (room, ids, treasure)
}

#[test]
fn quickstart_counter_works() {
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    let counter = runtime
        .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    assert_eq!(
        client.call(counter, "incr", args!["hits", 1]).unwrap(),
        Value::from(1i64)
    );
    assert_eq!(
        client.call(counter, "incr", args!["hits", 2]).unwrap(),
        Value::from(3i64)
    );
    assert_eq!(
        client.call_readonly(counter, "get", args!["hits"]).unwrap(),
        Value::from(3i64)
    );
    runtime.shutdown();
}

#[test]
fn events_spanning_multiple_contexts_are_atomic() {
    let runtime = AeonRuntime::builder()
        .servers(4)
        .class_graph(game_classes())
        .build()
        .unwrap();
    let (_room, players, treasure) = build_room(&runtime, 2);
    let client = runtime.client();
    assert_eq!(
        client.call(players[0], "get_gold", args![100]).unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        client.call(players[1], "get_gold", args![50]).unwrap(),
        Value::Bool(true)
    );
    assert_eq!(
        client
            .call_readonly(players[0], "balance", args![])
            .unwrap(),
        Value::from(150i64)
    );
    // Direct read of the shared treasure agrees.
    assert_eq!(
        client
            .call_readonly(treasure, "get", args!["gold"])
            .unwrap(),
        Value::from(150i64)
    );
    runtime.shutdown();
}

#[test]
fn concurrent_transfers_preserve_conservation_invariant() {
    // Strict serializability stress test: concurrent get_gold events move
    // gold between contexts; the total amount of gold must be conserved and
    // equal to the sequential outcome.
    let runtime = AeonRuntime::builder()
        .servers(4)
        .class_graph(game_classes())
        .build()
        .unwrap();
    let (_room, players, treasure) = build_room(&runtime, 4);
    let client = runtime.client();
    let per_player_events = 25;
    let mut handles = Vec::new();
    for &player in &players {
        for _ in 0..per_player_events {
            handles.push(client.submit_event(player, "get_gold", args![10]).unwrap());
        }
    }
    let mut successes = 0;
    for handle in handles {
        if handle.wait().unwrap() == Value::Bool(true) {
            successes += 1;
        }
    }
    assert_eq!(successes, players.len() * per_player_events);
    let total_moved = 10 * successes as i64;
    assert_eq!(
        client
            .call_readonly(treasure, "get", args!["gold"])
            .unwrap(),
        Value::from(total_moved)
    );
    // Each mine lost exactly what its player moved.
    for &player in &players {
        let remaining = client.call_readonly(player, "balance", args![]).unwrap();
        assert_eq!(remaining, Value::from(total_moved));
    }
    assert_eq!(runtime.stats().events_failed(), 0);
    runtime.shutdown();
}

#[test]
fn dominator_sequencing_matches_paper_example() {
    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(game_classes())
        .build()
        .unwrap();
    let (room, players, treasure) = build_room(&runtime, 2);
    // Players share the treasure, so their dominator is the room.
    for &player in &players {
        assert_eq!(
            runtime.dominator_of(player).unwrap(),
            Dominator::Context(room)
        );
    }
    // The treasure itself is a leaf: it is its own dominator.
    assert_eq!(
        runtime.dominator_of(treasure).unwrap(),
        Dominator::Context(treasure)
    );
    runtime.shutdown();
}

#[test]
fn ownership_violations_are_rejected() {
    struct Rogue {
        other: ContextId,
    }
    impl ContextObject for Rogue {
        fn class_name(&self) -> &str {
            "Player"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "poke_other" => inv.call(self.other, "get", args!["gold"]),
                _ => Err(AeonError::UnknownMethod {
                    class: "Player".into(),
                    method: method.into(),
                }),
            }
        }
    }
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let other = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let rogue = runtime
        .create_context(Box::new(Rogue { other }), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    let err = client.call(rogue, "poke_other", args![]).unwrap_err();
    assert!(matches!(err, AeonError::OwnershipViolation { .. }), "{err}");
    runtime.shutdown();
}

#[test]
fn readonly_events_cannot_update_state() {
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let kv = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    let err = client.call_readonly(kv, "set", args!["k", 1]).unwrap_err();
    assert!(matches!(err, AeonError::ReadOnlyViolation { .. }), "{err}");
    runtime.shutdown();
}

#[test]
fn readonly_events_share_a_context_concurrently() {
    struct SlowReader {
        concurrent: Arc<AtomicUsize>,
        max_concurrent: Arc<AtomicUsize>,
    }
    impl ContextObject for SlowReader {
        fn class_name(&self) -> &str {
            "Reader"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            _inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "read" => {
                    let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    self.max_concurrent.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    self.concurrent.fetch_sub(1, Ordering::SeqCst);
                    Ok(Value::Null)
                }
                _ => Err(AeonError::app("unknown")),
            }
        }
        fn is_readonly(&self, method: &str) -> bool {
            method == "read"
        }
    }
    // NOTE: two read-only events still serialise on the object mutex inside
    // the context, but they hold the context lock simultaneously, which is
    // what this test observes through the activation counters.
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let concurrent = Arc::new(AtomicUsize::new(0));
    let max_concurrent = Arc::new(AtomicUsize::new(0));
    let reader = runtime
        .create_context(
            Box::new(SlowReader {
                concurrent: concurrent.clone(),
                max_concurrent: max_concurrent.clone(),
            }),
            Placement::Auto,
        )
        .unwrap();
    let client = runtime.client();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            client
                .submit_readonly_event(reader, "read", args![])
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    assert_eq!(runtime.stats().readonly_events(), 4);
    runtime.shutdown();
}

#[test]
fn async_calls_complete_within_the_event() {
    struct Building;
    impl ContextObject for Building {
        fn class_name(&self) -> &str {
            "Room"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "update_time" => {
                    for child in inv.children(Some("Item"))? {
                        inv.call_async(child, "incr", args!["time", 1])?;
                    }
                    Ok(Value::Null)
                }
                _ => Err(AeonError::app("unknown")),
            }
        }
    }
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    let building = runtime
        .create_context(Box::new(Building), Placement::Auto)
        .unwrap();
    let mut rooms = Vec::new();
    for _ in 0..5 {
        rooms.push(
            runtime
                .create_owned_context(Box::new(KvContext::new("Item")), &[building])
                .unwrap(),
        );
    }
    let client = runtime.client();
    client.call(building, "update_time", args![]).unwrap();
    // All async updates are visible after the event completed.
    for room in rooms {
        assert_eq!(
            client.call_readonly(room, "get", args!["time"]).unwrap(),
            Value::from(1i64)
        );
    }
    assert_eq!(runtime.stats().async_calls(), 5);
    runtime.shutdown();
}

#[test]
fn sub_events_run_after_their_creator() {
    struct Spawner {
        child: ContextId,
    }
    impl ContextObject for Spawner {
        fn class_name(&self) -> &str {
            "Room"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "go" => {
                    inv.dispatch_event(self.child, "incr", args!["sub", 1])?;
                    // The sub-event has not run yet: it starts only after
                    // this event terminates, so the child still reads 0.
                    let now = inv.call(self.child, "get", args!["sub"])?;
                    Ok(now)
                }
                _ => Err(AeonError::app("unknown")),
            }
        }
    }
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let child = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let spawner = runtime
        .create_context(Box::new(Spawner { child }), Placement::Auto)
        .unwrap();
    runtime.add_ownership(spawner, child).unwrap();
    let client = runtime.client();
    let during = client.call(spawner, "go", args![]).unwrap();
    assert_eq!(
        during,
        Value::Null,
        "sub-event effects are invisible to the creator"
    );
    // Eventually the sub-event applies.
    let mut value = Value::Null;
    for _ in 0..100 {
        value = client.call_readonly(child, "get", args!["sub"]).unwrap();
        if value == Value::from(1i64) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(value, Value::from(1i64));
    assert_eq!(runtime.stats().sub_events(), 1);
    runtime.shutdown();
}

#[test]
fn create_child_from_within_an_event() {
    struct Factory;
    impl ContextObject for Factory {
        fn class_name(&self) -> &str {
            "Room"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "spawn_item" => {
                    let item = inv.create_child(Box::new(KvContext::new("Item")))?;
                    inv.call(item, "set", args!["kind", "sword"])?;
                    Ok(Value::from(item))
                }
                _ => Err(AeonError::app("unknown")),
            }
        }
    }
    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(game_classes())
        .build()
        .unwrap();
    let room = runtime
        .create_context(Box::new(Factory), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    let item = client
        .call(room, "spawn_item", args![])
        .unwrap()
        .as_context()
        .unwrap();
    // The new item is owned by the room and co-located with it.
    assert!(runtime
        .ownership_graph()
        .children(room)
        .unwrap()
        .contains(&item));
    assert_eq!(
        runtime.placement_of(item).unwrap(),
        runtime.placement_of(room).unwrap()
    );
    assert_eq!(
        client.call_readonly(item, "get", args!["kind"]).unwrap(),
        Value::from("sword")
    );
    runtime.shutdown();
}

#[test]
fn migration_preserves_state_and_placement() {
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    runtime.register_class_factory(
        "Item",
        Arc::new(|state: &Value| {
            let mut kv = KvContext::new("Item");
            kv.restore(state);
            Box::new(kv) as Box<dyn ContextObject>
        }),
    );
    let item = runtime
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(runtime.servers()[0]),
        )
        .unwrap();
    let client = runtime.client();
    client.call(item, "set", args!["gold", 77]).unwrap();
    let from = runtime.placement_of(item).unwrap();
    let to = runtime.servers().into_iter().find(|s| *s != from).unwrap();
    let moved_bytes = runtime.migrate_context(item, to).unwrap();
    assert!(moved_bytes > 0);
    assert_eq!(runtime.placement_of(item).unwrap(), to);
    // State survived the serialise/rebuild round trip.
    assert_eq!(
        client.call_readonly(item, "get", args!["gold"]).unwrap(),
        Value::from(77i64)
    );
    assert_eq!(runtime.stats().migrations(), 1);
    runtime.shutdown();
}

#[test]
fn migration_waits_for_inflight_events() {
    let runtime = AeonRuntime::builder().servers(2).build().unwrap();
    let item = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    // Pound the context with updates from several threads while migrating it
    // back and forth; no update may be lost.
    let updates = 200;
    let handles: Vec<_> = (0..updates)
        .map(|_| client.submit_event(item, "incr", args!["n", 1]).unwrap())
        .collect();
    let servers = runtime.servers();
    for i in 0..6 {
        runtime
            .migrate_context(item, servers[i % servers.len()])
            .unwrap();
    }
    for h in handles {
        h.wait().unwrap();
    }
    assert_eq!(
        client.call_readonly(item, "get", args!["n"]).unwrap(),
        Value::from(updates as i64)
    );
    runtime.shutdown();
}

#[test]
fn snapshot_and_restore_round_trip() {
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let room = runtime
        .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
        .unwrap();
    let item = runtime
        .create_owned_context(Box::new(KvContext::new("Item")), &[room])
        .unwrap();
    let client = runtime.client();
    client.call(room, "set", args!["name", "castle"]).unwrap();
    client.call(item, "set", args!["gold", 42]).unwrap();
    let snapshot = runtime.snapshot_context(room).unwrap();
    assert_eq!(snapshot.len(), 2);
    // Wreck the state, then restore.
    client.call(room, "set", args!["name", "ruins"]).unwrap();
    client.call(item, "set", args!["gold", 0]).unwrap();
    runtime.restore_snapshot(&snapshot).unwrap();
    assert_eq!(
        client.call_readonly(room, "get", args!["name"]).unwrap(),
        Value::from("castle")
    );
    assert_eq!(
        client.call_readonly(item, "get", args!["gold"]).unwrap(),
        Value::from(42i64)
    );
    runtime.shutdown();
}

#[test]
fn class_constraints_are_enforced_at_creation() {
    let runtime = AeonRuntime::builder()
        .servers(1)
        .class_graph(game_classes())
        .build()
        .unwrap();
    let item = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    // An Item may not own a Player.
    let err = runtime
        .create_owned_context(Box::new(KvContext::new("Player")), &[item])
        .unwrap_err();
    assert!(matches!(err, AeonError::OwnershipViolation { .. }));
    // Undeclared classes are rejected up front.
    let err = runtime
        .create_context(Box::new(KvContext::new("Dragon")), Placement::Auto)
        .unwrap_err();
    assert!(matches!(err, AeonError::Config(_)));
    runtime.shutdown();
}

#[test]
fn server_management_and_placement() {
    let runtime = AeonRuntime::builder().servers(3).build().unwrap();
    assert_eq!(runtime.servers().len(), 3);
    let new_server = runtime.add_server();
    assert_eq!(runtime.servers().len(), 4);
    // Auto placement balances across servers.
    let mut created = Vec::new();
    for _ in 0..8 {
        created.push(
            runtime
                .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                .unwrap(),
        );
    }
    for server in runtime.servers() {
        assert_eq!(runtime.contexts_on(server).len(), 2);
    }
    // A server with contexts cannot be removed...
    let victim = runtime.placement_of(created[0]).unwrap();
    assert!(runtime.remove_server(victim).is_err());
    // ...but an empty one can.
    for ctx in runtime.contexts_on(new_server) {
        runtime.migrate_context(ctx, victim).unwrap();
    }
    runtime.remove_server(new_server).unwrap();
    assert_eq!(runtime.servers().len(), 3);
    runtime.shutdown();
}

#[test]
fn shutdown_rejects_new_events() {
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let kv = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    runtime.shutdown();
    assert!(matches!(
        client.call(kv, "get", args!["k"]),
        Err(AeonError::RuntimeShutdown)
    ));
}

#[test]
fn unknown_target_and_method_errors() {
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let client = runtime.client();
    assert!(matches!(
        client.call(ContextId::new(4242), "get", args![]),
        Err(AeonError::ContextNotFound(_))
    ));
    let kv = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    assert!(matches!(
        client.call(kv, "no_such_method", args![]),
        Err(AeonError::UnknownMethod { .. })
    ));
    runtime.shutdown();
}

#[test]
fn latency_statistics_are_recorded() {
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let kv = runtime
        .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    for _ in 0..10 {
        client.call(kv, "incr", args!["n", 1]).unwrap();
    }
    let summary = runtime.stats().latency_summary();
    assert_eq!(summary.count, 10);
    assert!(summary.mean_micros > 0.0);
    assert_eq!(runtime.stats().events_completed(), 10);
    runtime.shutdown();
}

/// Regression: a panicking contextclass method must resolve the client
/// handle with [`AeonError::Panicked`] (not a disconnect), release the
/// context's activation lock, and leave the worker pool alive.
#[test]
fn panicking_method_fails_the_event_without_killing_the_pool() {
    struct Bomb;
    impl ContextObject for Bomb {
        fn class_name(&self) -> &str {
            "Bomb"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            _inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "explode" => panic!("kaboom"),
                _ => Ok(Value::from(7i64)),
            }
        }
    }
    let runtime = AeonRuntime::builder().worker_threads(1).build().unwrap();
    let bomb = runtime
        .create_context(Box::new(Bomb), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    let err = client.call(bomb, "explode", args![]).unwrap_err();
    assert!(
        matches!(err, AeonError::Panicked { ref reason } if reason.contains("kaboom")),
        "expected Panicked, got {err:?}"
    );
    // The single pool worker survived and the lock was released.
    assert_eq!(
        client.call(bomb, "poke", args![]).unwrap(),
        Value::from(7i64)
    );
    assert_eq!(runtime.events_in_flight(), 0);
    assert_eq!(runtime.stats().events_failed(), 1);
    assert_eq!(runtime.executor_stats().panics, 0);
    runtime.shutdown();
}

/// The builder rejects a zero-sized worker pool up front.
#[test]
fn zero_worker_pool_is_rejected() {
    assert!(matches!(
        AeonRuntime::builder().worker_threads(0).build(),
        Err(AeonError::Config(_))
    ));
}

/// The debug-build call-summary sanitizer: invoke edges covered by the
/// declared `calls [...]` summary record nothing, uncovered edges are
/// flagged (and deduplicated), and methods without a summary stay
/// unchecked.
#[test]
fn call_summary_sanitizer_flags_undeclared_edges() {
    use aeon_ownership::MethodRef;

    struct Caller {
        child: Option<ContextId>,
    }
    impl ContextObject for Caller {
        fn class_name(&self) -> &str {
            "Caller"
        }
        fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
            match method {
                "adopt" => {
                    self.child = Some(args.get_context(0)?);
                    Ok(Value::Null)
                }
                // Summary declares Child::incr only; "good" stays inside it,
                // "bad" also calls Child::set (sync) and Child::keys (async).
                "good" | "bad" => {
                    let child = self.child.ok_or_else(|| AeonError::app("no child"))?;
                    inv.call(child, "incr", args!["n", 1])?;
                    if method == "bad" {
                        inv.call(child, "set", args!["mark", 1])?;
                        inv.call_async(child, "keys", args![])?;
                    }
                    Ok(Value::Null)
                }
                // No summary declared for "wild": unchecked.
                "wild" => {
                    let child = self.child.ok_or_else(|| AeonError::app("no child"))?;
                    inv.call(child, "set", args!["wild", 1])
                }
                _ => Err(AeonError::UnknownMethod {
                    class: "Caller".into(),
                    method: method.into(),
                }),
            }
        }
    }

    let mut classes = ClassGraph::new();
    classes.add_constraint("Caller", "Child");
    classes.declare_method("Caller", "adopt", false);
    classes.declare_calls("Caller", "good", [MethodRef::new("Child", "incr")]);
    classes.declare_calls("Caller", "bad", [MethodRef::new("Child", "incr")]);
    classes.declare_method("Caller", "wild", false);

    let runtime = AeonRuntime::builder().class_graph(classes).build().unwrap();
    let caller = runtime
        .create_context(Box::new(Caller { child: None }), Placement::Auto)
        .unwrap();
    let child = runtime
        .create_owned_context(Box::new(KvContext::new("Child")), &[caller])
        .unwrap();
    let client = runtime.client();
    client.call(caller, "adopt", args![child]).unwrap();

    client.call(caller, "good", args![]).unwrap();
    client.call(caller, "wild", args![]).unwrap();
    assert!(
        runtime.call_summary_violations().is_empty(),
        "covered and unchecked calls must not be flagged: {:?}",
        runtime.call_summary_violations()
    );

    client.call(caller, "bad", args![]).unwrap();
    client.call(caller, "bad", args![]).unwrap(); // dedup
    let violations = runtime.call_summary_violations();
    if cfg!(debug_assertions) {
        assert_eq!(violations.len(), 2, "got {violations:?}");
        assert!(violations
            .iter()
            .any(|v| v.contains("Caller::bad") && v.contains("Child::set")));
        assert!(violations
            .iter()
            .any(|v| v.contains("Caller::bad") && v.contains("Child::keys")));
    } else {
        assert!(violations.is_empty(), "release builds record nothing");
    }
    runtime.shutdown();
}

/// A class graph that certifies `Counter::get` for the read-only fast path
/// (`ro` with an empty `calls []` summary) while leaving `keys` readonly
/// but summary-less (uncertified).
fn counter_classes() -> ClassGraph {
    let mut classes = ClassGraph::new();
    classes.declare_method("Counter", "get", true);
    classes.declare_calls("Counter", "get", []);
    classes.declare_method("Counter", "keys", true);
    classes.declare_method("Counter", "incr", false);
    classes
}

#[test]
fn certified_readonly_events_take_the_fast_path() {
    let runtime = AeonRuntime::builder()
        .class_graph(counter_classes())
        .build()
        .unwrap();
    let counter = runtime
        .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    client.call(counter, "incr", args!["hits", 5]).unwrap();

    // Certified: `get` is `ro` with an empty summary.
    assert_eq!(
        client.call_readonly(counter, "get", args!["hits"]).unwrap(),
        Value::from(5i64)
    );
    assert_eq!(runtime.executor_stats().fast_path, 1);

    // Uncertified: `keys` is `ro` but has no summary, so it stays on the
    // fully sequenced slow path.
    client.call_readonly(counter, "keys", args![]).unwrap();
    assert_eq!(runtime.executor_stats().fast_path, 1);

    // A burst of certified reads all completes on the fast path.
    let handles: Vec<_> = (0..32)
        .map(|_| {
            client
                .submit_readonly_event(counter, "get", args!["hits"])
                .unwrap()
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.wait().unwrap(), Value::from(5i64));
    }
    assert_eq!(runtime.executor_stats().fast_path, 33);
    runtime.shutdown();
}

#[test]
fn fast_path_can_be_disabled() {
    let runtime = AeonRuntime::builder()
        .class_graph(counter_classes())
        .readonly_fast_path(false)
        .build()
        .unwrap();
    let counter = runtime
        .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    client.call(counter, "incr", args!["hits", 1]).unwrap();
    assert_eq!(
        client.call_readonly(counter, "get", args!["hits"]).unwrap(),
        Value::from(1i64)
    );
    assert_eq!(runtime.executor_stats().fast_path, 0);
    runtime.shutdown();
}

#[test]
fn fast_path_reads_observe_completed_writes() {
    // Real-time ordering: once an exclusive event's handle has resolved, a
    // subsequently submitted certified read must observe its effect.
    let runtime = AeonRuntime::builder()
        .class_graph(counter_classes())
        .build()
        .unwrap();
    let counter = runtime
        .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    for i in 1..=50i64 {
        client.call(counter, "incr", args!["n", 1]).unwrap();
        assert_eq!(
            client.call_readonly(counter, "get", args!["n"]).unwrap(),
            Value::from(i)
        );
    }
    assert_eq!(runtime.executor_stats().fast_path, 50);
    runtime.shutdown();
}

#[test]
fn fast_path_rejects_calls_from_lying_summaries() {
    // `Liar::peek` is certified on an empty `calls []` summary but actually
    // performs a call: the fast path must fail the event rather than make
    // an unsequenced lock acquisition.
    struct Liar {
        item: Option<ContextId>,
    }
    impl ContextObject for Liar {
        fn class_name(&self) -> &str {
            "Liar"
        }
        fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
            match method {
                "adopt" => {
                    self.item = Some(args.get_context(0)?);
                    Ok(Value::Null)
                }
                "peek" => {
                    let item = self.item.ok_or_else(|| AeonError::app("no item"))?;
                    inv.call(item, "get", args!["gold"])
                }
                _ => Err(AeonError::UnknownMethod {
                    class: "Liar".into(),
                    method: method.into(),
                }),
            }
        }
        fn is_readonly(&self, method: &str) -> bool {
            method == "peek"
        }
    }

    let mut classes = ClassGraph::new();
    classes.add_constraint("Liar", "Item");
    classes.declare_method("Liar", "adopt", false);
    classes.declare_method("Liar", "peek", true);
    classes.declare_calls("Liar", "peek", []);
    let runtime = AeonRuntime::builder().class_graph(classes).build().unwrap();
    let liar = runtime
        .create_context(Box::new(Liar { item: None }), Placement::Auto)
        .unwrap();
    let item = runtime
        .create_owned_context(
            Box::new(KvContext::with_entries(
                "Item",
                [("gold", Value::from(1i64))],
            )),
            &[liar],
        )
        .unwrap();
    let client = runtime.client();
    client.call(liar, "adopt", args![item]).unwrap();
    let err = client.call_readonly(liar, "peek", args![]).unwrap_err();
    assert!(
        err.to_string().contains("calls []"),
        "expected a summary-lie error, got: {err}"
    );
    // The runtime stays healthy afterwards.
    assert_eq!(
        client.call_readonly(item, "get", args!["gold"]).unwrap(),
        Value::from(1i64)
    );
    runtime.shutdown();
}

#[test]
fn server_metrics_attribute_queue_depth_to_the_hosting_server() {
    // Regression test: queue depth used to be the pool-wide count split
    // evenly across servers, which made a hotspot on one server look like
    // uniform fleet load.  Pin a context per server, wedge the single
    // worker on one of them, pile events onto it, and check the backlog
    // lands on the hosting server only.
    use std::sync::mpsc;

    struct Gate {
        started: mpsc::Sender<()>,
        release: std::sync::Mutex<mpsc::Receiver<()>>,
    }
    impl ContextObject for Gate {
        fn class_name(&self) -> &str {
            "Item"
        }
        fn handle(
            &mut self,
            method: &str,
            _args: &Args,
            _inv: &mut Invocation<'_>,
        ) -> Result<Value> {
            match method {
                "wedge" => {
                    let _ = self.started.send(());
                    let _ = self.release.lock().unwrap().recv();
                    Ok(Value::Null)
                }
                "noop" => Ok(Value::Null),
                _ => Err(AeonError::app("unknown")),
            }
        }
    }

    let runtime = AeonRuntime::builder()
        .servers(2)
        .worker_threads(1)
        .max_spill_workers(0)
        .build()
        .unwrap();
    let servers = runtime.servers();
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let busy = runtime
        .create_context(
            Box::new(Gate {
                started: started_tx,
                release: std::sync::Mutex::new(release_rx),
            }),
            Placement::Server(servers[0]),
        )
        .unwrap();
    let _idle = runtime
        .create_context(
            Box::new(KvContext::new("Item")),
            Placement::Server(servers[1]),
        )
        .unwrap();

    let client = runtime.client();
    let wedged = client.submit_event(busy, "wedge", args![]).unwrap();
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("the wedge event reaches the worker");
    // The only worker is now blocked inside `busy`; these stay queued.
    let backlog: Vec<_> = (0..3)
        .map(|_| client.submit_event(busy, "noop", args![]).unwrap())
        .collect();

    let metrics = runtime.server_metrics();
    let depth_of = |s| {
        metrics
            .iter()
            .find(|m| m.server == s)
            .expect("metrics for every server")
            .queue_depth
    };
    assert_eq!(
        depth_of(servers[0]),
        3,
        "backlog sits behind the wedged server"
    );
    assert_eq!(
        depth_of(servers[1]),
        0,
        "the idle server reports no backlog"
    );

    release_tx.send(()).unwrap();
    wedged.wait().unwrap();
    for h in backlog {
        h.wait().unwrap();
    }
    runtime.shutdown();
}
