//! Context objects: the user-visible unit of state and behaviour.

use crate::event::{EventOutcome, EventRequest};
use crate::invocation::Invocation;
use crate::locks::ContextLock;
use aeon_types::{Args, ContextId, Result, Value};
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A `contextclass` instance, implemented by the application.
///
/// The paper extends C++ with a `contextclass` keyword; in this library a
/// contextclass is any type implementing `ContextObject`.  Methods are
/// dispatched dynamically by name with [`Args`]/[`Value`] payloads, which is
/// what allows the runtime to ship state across servers (migration,
/// checkpointing) without compile-time codegen.
///
/// # Snapshots
///
/// [`ContextObject::snapshot`] / [`ContextObject::restore`] convert the
/// context state to and from a [`Value`].  They are used by the migration
/// protocol (§5.2) and the fault-tolerance snapshot API (§5.3).  Returning
/// [`Value::Null`] from `snapshot` opts the context out of checkpointing,
/// mirroring the paper's "overridden method returns null" convention.
pub trait ContextObject: Send + 'static {
    /// Name of the contextclass (e.g. `"Room"`).
    fn class_name(&self) -> &str;

    /// Handles a method call or event landing on this context.
    ///
    /// `inv` exposes the runtime to the handler: synchronous calls,
    /// `async` calls and sub-event dispatch to owned contexts, plus child
    /// context creation.
    ///
    /// # Errors
    ///
    /// Implementations should return [`AeonError::UnknownMethod`] for
    /// unrecognised method names and [`AeonError::Application`] for
    /// application-level failures.
    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value>;

    /// Returns `true` when `method` was declared `readonly` (`ro`).
    ///
    /// Read-only events may execute concurrently in the same context; the
    /// runtime rejects calls to non-readonly methods from read-only events.
    fn is_readonly(&self, method: &str) -> bool {
        let _ = method;
        false
    }

    /// Serialises the context state for migration or checkpointing.
    fn snapshot(&self) -> Value {
        Value::Null
    }

    /// Restores the context state from a snapshot produced by
    /// [`ContextObject::snapshot`].
    fn restore(&mut self, state: &Value) {
        let _ = state;
    }
}

/// Factory used to re-instantiate a context object of a given class from a
/// snapshot (during migration to another server or crash recovery).
pub type ContextFactory = Arc<dyn Fn(&Value) -> Box<dyn ContextObject> + Send + Sync>;

/// A generic key/value context useful for tests, examples and benchmarks:
/// state is a map of [`Value`]s and methods `get`/`set`/`incr`/`keys` are
/// provided.
#[derive(Debug, Default)]
pub struct KvContext {
    class: String,
    map: BTreeMap<String, Value>,
}

impl KvContext {
    /// Creates an empty KV context with the given class name.
    pub fn new(class: impl Into<String>) -> Self {
        Self {
            class: class.into(),
            map: BTreeMap::new(),
        }
    }

    /// Creates a KV context pre-populated with entries.
    pub fn with_entries<I, K>(class: impl Into<String>, entries: I) -> Self
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Self {
            class: class.into(),
            map: entries.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }
}

impl KvContext {
    fn get(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(self
            .map
            .get(args.get_str(0)?)
            .cloned()
            .unwrap_or(Value::Null))
    }

    fn set(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_str(0)?.to_string();
        let value = args.get(1).cloned().unwrap_or(Value::Null);
        Ok(self.map.insert(key, value).unwrap_or(Value::Null))
    }

    fn incr(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        let key = args.get_str(0)?.to_string();
        let by = args.get_i64(1).unwrap_or(1);
        let current = self.map.get(&key).and_then(Value::as_i64).unwrap_or(0);
        let next = current + by;
        self.map.insert(key, Value::from(next));
        Ok(Value::from(next))
    }

    fn keys(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        Ok(Value::List(
            self.map.keys().map(|k| Value::from(k.clone())).collect(),
        ))
    }
}

// KvContext picks its class name per instance, so it implements
// `ContextClass` by hand (overriding `class_name`) instead of going through
// the `context_class!` macro.
impl crate::method_table::ContextClass for KvContext {
    fn table() -> &'static crate::method_table::MethodTable<Self> {
        static TABLE: std::sync::OnceLock<crate::method_table::MethodTable<KvContext>> =
            std::sync::OnceLock::new();
        TABLE.get_or_init(|| {
            crate::method_table::MethodTable::builder("Kv")
                .readonly("get", KvContext::get)
                .method("set", KvContext::set)
                .method("incr", KvContext::incr)
                .readonly("keys", KvContext::keys)
                .build()
        })
    }

    fn class_name(&self) -> &str {
        &self.class
    }

    fn snapshot(&self) -> Value {
        Value::map([
            ("class", Value::from(self.class.clone())),
            ("map", Value::Map(self.map.clone())),
        ])
    }

    fn restore(&mut self, state: &Value) {
        if let Some(class) = state.get("class").and_then(Value::as_str) {
            self.class = class.to_string();
        }
        if let Some(map) = state.get("map").and_then(Value::as_map) {
            self.map = map.clone();
        }
    }
}

/// Pending certified read-only fast-path events of one context, drained in
/// batches under a single shared activation (see
/// `RuntimeInner::drain_fast_queue`).
#[derive(Default)]
pub(crate) struct FastQueue {
    /// Events waiting for the next drain, with their completion senders.
    pub(crate) queue: VecDeque<(EventRequest, Sender<EventOutcome>)>,
    /// Whether a drain task for this slot is queued or running on the
    /// executor.  At most one drain at a time preserves submission order.
    pub(crate) draining: bool,
}

/// Runtime bookkeeping for a hosted context.
pub(crate) struct ContextSlot {
    pub(crate) id: ContextId,
    pub(crate) class: String,
    /// The protocol-level lock (activation queue + activated set).
    pub(crate) lock: ContextLock,
    /// The application object.  Accessed only by events holding the
    /// protocol lock on this context.
    pub(crate) object: Mutex<Box<dyn ContextObject>>,
    /// Certified read-only events queued for the fast path.
    pub(crate) fast: Mutex<FastQueue>,
}

impl ContextSlot {
    pub(crate) fn new(id: ContextId, object: Box<dyn ContextObject>) -> Arc<Self> {
        let class = object.class_name().to_string();
        Arc::new(Self {
            id,
            class,
            lock: ContextLock::new(id),
            object: Mutex::new(object),
            fast: Mutex::new(FastQueue::default()),
        })
    }
}

impl fmt::Debug for ContextSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContextSlot")
            .field("id", &self.id)
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_context_snapshot_round_trip() {
        let mut kv = KvContext::with_entries("Item", [("gold", Value::from(10i64))]);
        let snap = ContextObject::snapshot(&kv);
        kv.map.clear();
        kv.class = "Other".into();
        ContextObject::restore(&mut kv, &snap);
        assert_eq!(kv.class, "Item");
        assert_eq!(kv.map.get("gold"), Some(&Value::from(10i64)));
    }

    #[test]
    fn kv_readonly_classification() {
        let kv = KvContext::new("Item");
        assert!(kv.is_readonly("get"));
        assert!(kv.is_readonly("keys"));
        assert!(!kv.is_readonly("set"));
        assert!(!kv.is_readonly("incr"));
    }

    #[test]
    fn default_snapshot_is_null() {
        struct Plain;
        impl ContextObject for Plain {
            fn class_name(&self) -> &str {
                "Plain"
            }
            fn handle(
                &mut self,
                _method: &str,
                _args: &Args,
                _inv: &mut Invocation<'_>,
            ) -> Result<Value> {
                Ok(Value::Null)
            }
        }
        let p = Plain;
        assert!(p.snapshot().is_null());
        assert!(!p.is_readonly("anything"));
    }
}
