//! Runtime statistics: event throughput, latency, message and migration
//! counters.
//!
//! Latency samples accumulate into the shared
//! [`aeon_types::LatencyHistogram`], the same fixed-bucket histogram every
//! backend reports through [`aeon_types::ServerMetrics`], so the runtime's
//! internal summary and its external metric reports can never disagree on
//! bucketing.

use aeon_types::LatencyHistogram;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Aggregated latency statistics (microsecond resolution).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_micros: f64,
    /// Minimum observed latency in microseconds.
    pub min_micros: u64,
    /// Maximum observed latency in microseconds.
    pub max_micros: u64,
    /// 50th percentile (approximate, histogram-based).
    pub p50_micros: u64,
    /// 99th percentile (approximate, histogram-based).
    pub p99_micros: u64,
}

fn summarize(h: &LatencyHistogram) -> LatencySummary {
    LatencySummary {
        count: h.count,
        mean_micros: if h.count == 0 {
            0.0
        } else {
            h.total_micros as f64 / h.count as f64
        },
        min_micros: h.min_micros,
        max_micros: h.max_micros,
        p50_micros: h.p50_micros(),
        p99_micros: h.p99_micros(),
    }
}

/// Counters collected by the runtime; all methods are thread-safe.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    events_completed: AtomicU64,
    events_failed: AtomicU64,
    readonly_events: AtomicU64,
    method_calls: AtomicU64,
    async_calls: AtomicU64,
    sub_events: AtomicU64,
    migrations: AtomicU64,
    migrated_bytes: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

impl RuntimeStats {
    /// Records a completed event (success or failure) and its latency.
    pub fn record_event(&self, success: bool, readonly: bool, latency: Duration) {
        if success {
            self.events_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.events_failed.fetch_add(1, Ordering::Relaxed);
        }
        if readonly {
            self.readonly_events.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.lock().record(latency.as_micros() as u64);
    }

    /// Records a synchronous or asynchronous method call executed within an
    /// event.
    pub fn record_method_call(&self, asynchronous: bool) {
        self.method_calls.fetch_add(1, Ordering::Relaxed);
        if asynchronous {
            self.async_calls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a sub-event dispatched from within an event.
    pub fn record_sub_event(&self) {
        self.sub_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed context migration and the payload size moved.
    pub fn record_migration(&self, bytes: u64) {
        self.migrations.fetch_add(1, Ordering::Relaxed);
        self.migrated_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of successfully completed events.
    pub fn events_completed(&self) -> u64 {
        self.events_completed.load(Ordering::Relaxed)
    }

    /// Number of failed events.
    pub fn events_failed(&self) -> u64 {
        self.events_failed.load(Ordering::Relaxed)
    }

    /// Number of events executed in read-only mode.
    pub fn readonly_events(&self) -> u64 {
        self.readonly_events.load(Ordering::Relaxed)
    }

    /// Number of context method calls executed within events.
    pub fn method_calls(&self) -> u64 {
        self.method_calls.load(Ordering::Relaxed)
    }

    /// Number of asynchronous method calls.
    pub fn async_calls(&self) -> u64 {
        self.async_calls.load(Ordering::Relaxed)
    }

    /// Number of sub-events dispatched from within events.
    pub fn sub_events(&self) -> u64 {
        self.sub_events.load(Ordering::Relaxed)
    }

    /// Number of context migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Total bytes of context state moved by migrations.
    pub fn migrated_bytes(&self) -> u64 {
        self.migrated_bytes.load(Ordering::Relaxed)
    }

    /// Latency summary over all completed events.
    pub fn latency_summary(&self) -> LatencySummary {
        summarize(&self.latency.lock())
    }

    /// A copy of the full latency histogram (for metric reports).
    pub fn latency_histogram(&self) -> LatencyHistogram {
        *self.latency.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = RuntimeStats::default();
        stats.record_event(true, false, Duration::from_millis(1));
        stats.record_event(true, true, Duration::from_millis(2));
        stats.record_event(false, false, Duration::from_millis(3));
        stats.record_method_call(false);
        stats.record_method_call(true);
        stats.record_sub_event();
        stats.record_migration(1024);
        assert_eq!(stats.events_completed(), 2);
        assert_eq!(stats.events_failed(), 1);
        assert_eq!(stats.readonly_events(), 1);
        assert_eq!(stats.method_calls(), 2);
        assert_eq!(stats.async_calls(), 1);
        assert_eq!(stats.sub_events(), 1);
        assert_eq!(stats.migrations(), 1);
        assert_eq!(stats.migrated_bytes(), 1024);
    }

    #[test]
    fn latency_summary_is_sane() {
        let stats = RuntimeStats::default();
        for ms in [1u64, 2, 4, 8, 100] {
            stats.record_event(true, false, Duration::from_millis(ms));
        }
        let s = stats.latency_summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min_micros, 1_000);
        assert_eq!(s.max_micros, 100_000);
        assert!(s.mean_micros > 1_000.0 && s.mean_micros < 100_000.0);
        assert!(s.p50_micros >= 1_000);
        assert!(s.p99_micros >= s.p50_micros);
        assert_eq!(stats.latency_histogram().count, 5);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let stats = RuntimeStats::default();
        let s = stats.latency_summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_micros, 0.0);
        assert_eq!(s.p99_micros, 0);
    }

    #[test]
    fn histogram_percentiles_are_monotone_in_quantile() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(i);
        }
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
    }
}
