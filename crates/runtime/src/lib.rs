//! The AEON runtime: strict-serializable multi-context events over an
//! ownership network (§4 of the paper).
//!
//! The runtime hosts *contexts* (user objects implementing
//! [`ContextObject`]) on a set of logical *servers*, maintains the ownership
//! DAG, and executes *events* — client requests that may traverse many
//! contexts — so that the overall execution is strictly serializable,
//! deadlock free and starvation free:
//!
//! 1. every event is first *sequenced* at the dominator of its target
//!    context (Algorithm 2's `dispatchEvent`), taking the dominator's lock
//!    in exclusive or shared (read-only) mode;
//! 2. the event then executes at its target, locking each context it enters
//!    (`scheduleNext` / `activatePath`), making synchronous or `async`
//!    method calls only along ownership edges;
//! 3. on completion, every lock is released in reverse acquisition order and
//!    sub-events dispatched from within the event are submitted.
//!
//! The unit of parallelism is the event: events whose targets do not share
//! descendants have different dominators and proceed concurrently.
//!
//! # Examples
//!
//! ```
//! use aeon_runtime::{AeonRuntime, ContextObject, Invocation, Placement};
//! use aeon_types::{args, Args, Result, Value};
//!
//! struct Counter { count: i64 }
//! impl ContextObject for Counter {
//!     fn class_name(&self) -> &str { "Counter" }
//!     fn handle(&mut self, method: &str, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
//!         match method {
//!             "add" => { self.count += args.get_i64(0)?; Ok(Value::from(self.count)) }
//!             "get" => Ok(Value::from(self.count)),
//!             _ => Err(aeon_types::AeonError::UnknownMethod {
//!                 class: "Counter".into(), method: method.into() }),
//!         }
//!     }
//!     fn is_readonly(&self, method: &str) -> bool { method == "get" }
//! }
//!
//! # fn main() -> Result<()> {
//! let runtime = AeonRuntime::builder().servers(2).build()?;
//! let counter = runtime.create_context(Box::new(Counter { count: 0 }), Placement::Auto)?;
//! let client = runtime.client();
//! let handle = client.submit_event(counter, "add", args![5])?;
//! assert_eq!(handle.wait()?, Value::from(5i64));
//! runtime.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod context;
pub mod event;
pub mod executor;
pub mod invocation;
pub mod locks;
pub mod method_table;
pub mod runtime;
pub mod snapshot;
pub mod stats;

pub use aeon_analyzer::AnalysisMode;
pub use context::{ContextFactory, ContextObject, KvContext};
pub use event::{EventHandle, EventOutcome, EventRequest};
pub use executor::{ExecutorConfig, ExecutorStats, ShardedExecutor};
pub use invocation::{Invocation, InvocationHost, SubEvent};
pub use locks::ContextLock;
pub use method_table::{
    macro_support, ContextClass, Handler, MethodEntry, MethodTable, MethodTableBuilder,
};
pub use runtime::{AeonClient, AeonRuntime, Placement, RuntimeBuilder, RuntimeConfig};
pub use snapshot::Snapshot;
pub use stats::RuntimeStats;
