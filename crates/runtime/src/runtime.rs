//! The public runtime: context hosting, event submission, elasticity
//! primitives (server management and context migration), and snapshots.

use crate::context::{ContextFactory, ContextObject, ContextSlot};
use crate::event::{EventHandle, EventOutcome, EventRequest};
use crate::executor::{ExecutorConfig, ExecutorStats, ShardedExecutor};
use crate::invocation::{EventExecution, FastPathExecution, Invocation};
use crate::locks::ContextLock;
use crate::snapshot::Snapshot;
use crate::stats::RuntimeStats;
use aeon_analyzer::AnalysisMode;
use aeon_ownership::{ClassGraph, Dominator, DominatorMode, DominatorResolver, OwnershipGraph};
use aeon_types::{
    codec, AccessMode, AeonError, Args, ClientId, ContextId, EventId, IdGenerator, Result,
    ServerId, ServerMetrics, SharedHistorySink, Value,
};
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Placement policy for newly created contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Place the context on the least-loaded server (fewest contexts).
    #[default]
    Auto,
    /// Place the context on the given server.
    Server(ServerId),
    /// Co-locate the context with another context (e.g. its owner) for
    /// locality, mirroring the paper's placement of Players/Items next to
    /// their Room.
    WithContext(ContextId),
}

/// Configuration of the runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of logical servers to create at startup.
    pub initial_servers: usize,
    /// How dominators are derived from the ownership network.
    pub dominator_mode: DominatorMode,
    /// Optional contextclass constraint graph; when present, context
    /// creation and ownership changes are validated against it.
    pub class_graph: Option<ClassGraph>,
    /// How the static analysis pipeline treats the class graph at build
    /// time (default: [`AnalysisMode::Enforce`]).
    pub analysis: AnalysisMode,
    /// Worker-pool configuration for event execution (pool size, shard
    /// count, blocking escape hatch).
    pub executor: ExecutorConfig,
    /// Whether analyzer-certified read-only events (declared `ro` with an
    /// empty `calls []` summary) take the fast path: no dominator
    /// sequencing, a shared activation of the target alone, and batched
    /// execution under one lock acquisition.  Requires a class graph to
    /// have any effect.
    pub readonly_fast_path: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            initial_servers: 1,
            dominator_mode: DominatorMode::default(),
            class_graph: None,
            analysis: AnalysisMode::default(),
            executor: ExecutorConfig::default(),
            readonly_fast_path: true,
        }
    }
}

/// Builder for [`AeonRuntime`].
#[derive(Debug, Default)]
pub struct RuntimeBuilder {
    config: RuntimeConfig,
}

impl RuntimeBuilder {
    /// Sets the number of logical servers created at startup.
    pub fn servers(mut self, n: usize) -> Self {
        self.config.initial_servers = n;
        self
    }

    /// Sets the dominator derivation mode.
    pub fn dominator_mode(mut self, mode: DominatorMode) -> Self {
        self.config.dominator_mode = mode;
        self
    }

    /// Installs a contextclass constraint graph; the static analysis
    /// pipeline is run by [`RuntimeBuilder::build`] (see
    /// [`RuntimeBuilder::analysis`]).
    pub fn class_graph(mut self, classes: ClassGraph) -> Self {
        self.config.class_graph = Some(classes);
        self
    }

    /// Sets how [`RuntimeBuilder::build`] treats analysis findings on the
    /// class graph: `Off` skips the pipeline, `Warn` prints diagnostics and
    /// proceeds, `Enforce` (the default) refuses to build on any
    /// error-severity diagnostic.
    pub fn analysis(mut self, mode: AnalysisMode) -> Self {
        self.config.analysis = mode;
        self
    }

    /// Sets the number of resident event-executor workers (default: the
    /// machine's available parallelism).  The shard count scales with it
    /// unless set explicitly with [`RuntimeBuilder::executor_shards`].
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.config.executor.workers = n;
        self
    }

    /// Sets the number of executor injection shards (events are routed by
    /// target context id, so same-context events keep FIFO affinity).
    /// Zero restores the default of four shards per worker.
    pub fn executor_shards(mut self, n: usize) -> Self {
        self.config.executor.shards = n;
        self
    }

    /// Caps the spill workers the blocking escape hatch may keep alive at
    /// once.
    pub fn max_spill_workers(mut self, n: usize) -> Self {
        self.config.executor.max_spill_workers = n;
        self
    }

    /// Caps how many queued same-context events one executor dequeue — and,
    /// on the read-only fast path, one activation/lock acquisition — may
    /// drain as a batch.  `1` disables batching; values are clamped to at
    /// least 1.
    pub fn batch_max(mut self, n: usize) -> Self {
        self.config.executor.batch_max = n.max(1);
        self
    }

    /// Enables or disables the analyzer-certified read-only fast path
    /// (default: enabled).  Certified events skip dominator sequencing and
    /// execute under a shared activation of the target alone; disable to
    /// force every event through the fully sequenced slow path (e.g. for
    /// A/B benchmarking).
    pub fn readonly_fast_path(mut self, enabled: bool) -> Self {
        self.config.readonly_fast_path = enabled;
        self
    }

    /// Builds the runtime.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when `servers` is zero.
    /// * [`AeonError::ClassCycleDetected`] when the class graph's
    ///   ownership constraints are cyclic.
    /// * [`AeonError::AnalysisRejected`] when the analysis pipeline reports
    ///   error diagnostics and the mode is [`AnalysisMode::Enforce`].
    pub fn build(self) -> Result<AeonRuntime> {
        if self.config.initial_servers == 0 {
            return Err(AeonError::Config("at least one server is required".into()));
        }
        if self.config.executor.workers == 0 {
            return Err(AeonError::Config(
                "at least one executor worker is required".into(),
            ));
        }
        if let Some(classes) = &self.config.class_graph {
            classes.check()?;
            aeon_analyzer::enforce(classes, self.config.analysis)?;
        }
        // The fast-path admission set is fixed at build time: `ro` methods
        // whose declared call summary the analyzer certifies as empty.
        let mut certified: HashMap<String, HashSet<String>> = HashMap::new();
        if self.config.readonly_fast_path {
            if let Some(classes) = &self.config.class_graph {
                for m in aeon_analyzer::certified_readonly(classes) {
                    certified.entry(m.class).or_default().insert(m.method);
                }
            }
        }
        let executor = ShardedExecutor::new("aeon-runtime", self.config.executor.clone());
        let inner = Arc::new(RuntimeInner {
            executor,
            certified,
            resolver: DominatorResolver::new(self.config.dominator_mode),
            config: self.config,
            graph: RwLock::new(OwnershipGraph::new()),
            contexts: RwLock::new(HashMap::new()),
            placement: RwLock::new(HashMap::new()),
            servers: RwLock::new(BTreeMap::new()),
            factories: RwLock::new(HashMap::new()),
            global_root: ContextLock::new(ContextId::new(u64::MAX)),
            ids: IdGenerator::starting_at(1),
            next_server: AtomicU32::new(0),
            events_in_flight: AtomicU64::new(0),
            stats: RuntimeStats::default(),
            shutdown: AtomicBool::new(false),
            paused: Mutex::new(Vec::new()),
            history: RwLock::new(None),
            summary_violations: Mutex::new(std::collections::BTreeSet::new()),
        });
        for _ in 0..inner.config.initial_servers {
            inner.add_server();
        }
        Ok(AeonRuntime { inner })
    }
}

/// Per-server bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct ServerInfo {
    /// Whether the server is accepting contexts.
    pub online: bool,
    /// Events whose target context was placed on this server.
    pub events_executed: u64,
}

/// Shared interior of the runtime.
pub(crate) struct RuntimeInner {
    /// The sharded worker pool that executes events (no thread is spawned
    /// per event; see `crate::executor`).
    executor: ShardedExecutor,
    /// Methods admitted to the read-only fast path, keyed by class name:
    /// `ro` methods whose declared call summary the analyzer certified as
    /// empty (see [`aeon_analyzer::certified_readonly`]).  Empty when no
    /// class graph is installed or the fast path is disabled.
    certified: HashMap<String, HashSet<String>>,
    pub(crate) config: RuntimeConfig,
    pub(crate) graph: RwLock<OwnershipGraph>,
    pub(crate) resolver: DominatorResolver,
    pub(crate) contexts: RwLock<HashMap<ContextId, Arc<ContextSlot>>>,
    pub(crate) placement: RwLock<HashMap<ContextId, ServerId>>,
    pub(crate) servers: RwLock<BTreeMap<ServerId, ServerInfo>>,
    pub(crate) factories: RwLock<HashMap<String, ContextFactory>>,
    /// Sequencer used when a target has no concrete dominator
    /// ([`Dominator::GlobalRoot`]).
    pub(crate) global_root: ContextLock,
    pub(crate) ids: IdGenerator,
    next_server: AtomicU32,
    events_in_flight: AtomicU64,
    pub(crate) stats: RuntimeStats,
    shutdown: AtomicBool,
    /// Contexts paused for migration (step II of the protocol): events
    /// targeting them are still accepted but their execution is delayed by
    /// the context lock, which the migration holds exclusively.
    paused: Mutex<Vec<ContextId>>,
    /// Optional live history sink: when installed, every event's
    /// invocation/response points and every context access are reported to
    /// it (see `aeon_types::HistorySink` for the timestamping contract).
    history: RwLock<Option<SharedHistorySink>>,
    /// Debug-build call-summary sanitizer output: human-readable records of
    /// actual invoke edges that the statically declared `calls [...]`
    /// summaries do not cover (deduplicated).
    summary_violations: Mutex<std::collections::BTreeSet<String>>,
}

impl std::fmt::Debug for RuntimeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeInner")
            .field("contexts", &self.contexts.read().len())
            .field("servers", &self.servers.read().len())
            .finish_non_exhaustive()
    }
}

impl RuntimeInner {
    /// The installed history sink, if any (cloned out so hooks never hold
    /// the registry lock while recording).
    pub(crate) fn sink(&self) -> Option<SharedHistorySink> {
        self.history.read().clone()
    }

    pub(crate) fn context_slot(&self, id: ContextId) -> Result<Arc<ContextSlot>> {
        self.contexts
            .read()
            .get(&id)
            .cloned()
            .ok_or(AeonError::ContextNotFound(id))
    }

    pub(crate) fn dominator_of(&self, target: ContextId) -> Result<Dominator> {
        let graph = self.graph.read();
        self.resolver.dominator(&graph, target)
    }

    pub(crate) fn may_call(&self, caller: ContextId, callee: ContextId) -> bool {
        self.graph.read().may_call(caller, callee)
    }

    /// Debug-build backstop of the static analysis: checks one actual
    /// invoke edge against the caller method's declared `calls [...]`
    /// summary and records a violation when the summary exists but does
    /// not cover the edge.  Methods without a summary are unchecked.
    pub(crate) fn record_call_edge(
        &self,
        caller: ContextId,
        caller_method: &str,
        target: ContextId,
        target_method: &str,
    ) {
        let Some(classes) = &self.config.class_graph else {
            return;
        };
        let (caller_class, target_class) = {
            let graph = self.graph.read();
            match (graph.class_of(caller), graph.class_of(target)) {
                (Ok(a), Ok(b)) => (a.to_string(), b.to_string()),
                _ => return,
            }
        };
        let Some(summary) = classes.calls_of(&caller_class, caller_method) else {
            return;
        };
        let covered = summary
            .iter()
            .any(|m| m.class == target_class && m.method == target_method);
        if !covered {
            self.summary_violations.lock().insert(format!(
                "{caller_class}::{caller_method} called {target_class}::{target_method}, \
                 which its declared call summary does not cover"
            ));
        }
    }

    pub(crate) fn children_of(
        &self,
        parent: ContextId,
        class: Option<&str>,
    ) -> Result<Vec<ContextId>> {
        let graph = self.graph.read();
        let children = graph.children(parent)?;
        let mut out = Vec::with_capacity(children.len());
        for &c in children {
            if class.is_none_or(|cls| graph.class_of(c).map(|k| k == cls).unwrap_or(false)) {
                out.push(c);
            }
        }
        Ok(out)
    }

    fn pick_server(&self, placement: Placement) -> Result<ServerId> {
        match placement {
            Placement::Server(id) => {
                let servers = self.servers.read();
                match servers.get(&id) {
                    Some(info) if info.online => Ok(id),
                    _ => Err(AeonError::ServerNotFound(id)),
                }
            }
            Placement::WithContext(other) => {
                let server = self
                    .placement
                    .read()
                    .get(&other)
                    .copied()
                    .ok_or(AeonError::ContextNotFound(other))?;
                // The co-location target may sit on a crashed server; never
                // place new contexts there.
                match self.servers.read().get(&server) {
                    Some(info) if info.online => Ok(server),
                    _ => Err(AeonError::ServerNotFound(server)),
                }
            }
            Placement::Auto => {
                let servers = self.servers.read();
                let placement = self.placement.read();
                let mut load: BTreeMap<ServerId, usize> = servers
                    .iter()
                    .filter(|(_, info)| info.online)
                    .map(|(id, _)| (*id, 0))
                    .collect();
                for server in placement.values() {
                    if let Some(count) = load.get_mut(server) {
                        *count += 1;
                    }
                }
                load.into_iter()
                    .min_by_key(|(id, count)| (*count, id.raw()))
                    .map(|(id, _)| id)
                    .ok_or_else(|| AeonError::Config("no online servers".into()))
            }
        }
    }

    pub(crate) fn create_context_owned_by(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
        colocate_with: Option<ContextId>,
    ) -> Result<ContextId> {
        let class = object.class_name().to_string();
        // Validate class constraints against every owner before mutating.
        if let Some(classes) = &self.config.class_graph {
            let graph = self.graph.read();
            for owner in owners {
                let owner_class = graph.class_of(*owner)?;
                if !classes.allows(owner_class, &class) {
                    return Err(AeonError::ownership(*owner, ContextId::new(u64::MAX)));
                }
            }
        }
        let id = ContextId::new(self.ids.next_raw());
        let placement = match colocate_with.or_else(|| owners.first().copied()) {
            Some(other) => Placement::WithContext(other),
            None => Placement::Auto,
        };
        let server = self.pick_server(placement)?;
        {
            let mut graph = self.graph.write();
            graph.add_context(id, class)?;
            for owner in owners {
                if let Err(e) = graph.add_edge(*owner, id) {
                    let _ = graph.remove_context(id);
                    return Err(e);
                }
            }
        }
        self.contexts
            .write()
            .insert(id, ContextSlot::new(id, object));
        self.placement.write().insert(id, server);
        Ok(id)
    }

    pub(crate) fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        if let Some(classes) = &self.config.class_graph {
            let graph = self.graph.read();
            let owner_class = graph.class_of(owner)?;
            let owned_class = graph.class_of(owned)?;
            if !classes.allows(owner_class, owned_class) {
                return Err(AeonError::ownership(owner, owned));
            }
        }
        self.graph.write().add_edge(owner, owned)
    }

    pub(crate) fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.graph.write().remove_edge(owner, owned)
    }

    fn add_server(&self) -> ServerId {
        let id = ServerId::new(self.next_server.fetch_add(1, Ordering::Relaxed));
        self.servers.write().insert(
            id,
            ServerInfo {
                online: true,
                events_executed: 0,
            },
        );
        id
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Runs an event (and, recursively, the sub-events it dispatches) on the
    /// current thread.
    fn run_event(self: &Arc<Self>, request: EventRequest) -> EventOutcome {
        let started = Instant::now();
        // Held until the *whole causal chain* (the event plus every
        // sub-event it dispatched) has finished: drain and elasticity
        // decisions reading the gauge must not see a transient zero while
        // the chain is still executing.  The guard is also panic-safe.
        let _in_flight = InFlightGuard::enter(&self.events_in_flight);
        let (result, sub_events) = EventExecution::run(Arc::clone(self), &request);
        let latency = started.elapsed();
        self.stats
            .record_event(result.is_ok(), request.mode.is_read_only(), latency);
        if let Some(server) = self.placement.read().get(&request.target) {
            if let Some(info) = self.servers.write().get_mut(server) {
                info.events_executed += 1;
            }
        }
        // The event terminated (locks released); its completion becomes
        // observable no earlier than this point.
        if let Some(sink) = self.sink() {
            sink.responded(request.id);
        }
        // Sub-events run after their creator terminates.
        for sub in sub_events {
            let sub_request = EventRequest {
                id: EventId::new(self.ids.next_raw()),
                client: request.client,
                target: sub.target,
                method: sub.method,
                args: sub.args,
                mode: sub.mode,
            };
            if let Some(sink) = self.sink() {
                sink.invoked(sub_request.id);
            }
            let _ = self.run_event(sub_request);
        }
        EventOutcome {
            event: request.id,
            result,
            latency,
        }
    }

    /// Hands the event to the worker pool, sharded by target context so
    /// events on the same context keep submission-order affinity.
    fn spawn_event(self: &Arc<Self>, request: EventRequest) -> EventHandle {
        let (tx, handle) = EventHandle::new(request.id);
        let inner = Arc::clone(self);
        let key = request.target.raw();
        self.executor.submit(key, move || {
            let outcome = inner.run_event(request);
            let _ = tx.send(outcome);
        });
        handle
    }

    /// Whether `method` of `class` is admitted to the read-only fast path.
    pub(crate) fn is_certified_readonly(&self, class: &str, method: &str) -> bool {
        self.certified
            .get(class)
            .is_some_and(|methods| methods.contains(method))
    }

    /// Enqueues a certified read-only event on its target's fast queue and
    /// schedules a drain task unless one is already queued or running.
    fn spawn_fast_event(
        self: &Arc<Self>,
        slot: Arc<ContextSlot>,
        request: EventRequest,
    ) -> EventHandle {
        let (tx, handle) = EventHandle::new(request.id);
        let spawn_drain = {
            let mut fast = slot.fast.lock();
            fast.queue.push_back((request, tx));
            !std::mem::replace(&mut fast.draining, true)
        };
        if spawn_drain {
            let inner = Arc::clone(self);
            let drain_slot = Arc::clone(&slot);
            self.executor
                .submit(slot.id.raw(), move || inner.drain_fast_queue(&drain_slot));
        }
        // A shutdown racing the enqueue may already have swept the fast
        // queues (and the executor drops post-shutdown submissions), so
        // sweep again: the handle must not hang on a stranded sender.
        if self.is_shutdown() {
            Self::fail_fast_queue(&slot);
        }
        handle
    }

    /// Runs batches of certified read-only events for one context until its
    /// fast queue is empty.
    fn drain_fast_queue(self: &Arc<Self>, slot: &Arc<ContextSlot>) {
        let batch_max = self.config.executor.batch_max.max(1);
        loop {
            if self.is_shutdown() {
                Self::fail_fast_queue(slot);
                return;
            }
            let batch: Vec<(EventRequest, Sender<EventOutcome>)> = {
                let mut fast = slot.fast.lock();
                if fast.queue.is_empty() {
                    fast.draining = false;
                    return;
                }
                let n = fast.queue.len().min(batch_max);
                fast.queue.drain(..n).collect()
            };
            self.run_fast_batch(slot, batch);
        }
    }

    /// Drops every queued fast-path sender so the pending handles resolve
    /// as disconnected ([`AeonError::RuntimeShutdown`]), matching what the
    /// executor's shutdown drain does to queued slow-path events.
    fn fail_fast_queue(slot: &ContextSlot) {
        let mut fast = slot.fast.lock();
        fast.draining = false;
        fast.queue.clear();
    }

    /// Executes one batch of certified read-only events on `slot` under a
    /// single shared activation and a single object-lock acquisition.
    ///
    /// Skipping dominator sequencing is sound because every event in the
    /// batch was certified to touch only this context (empty `calls []`
    /// summary): a single-lock footprint cannot participate in a
    /// hold-and-wait cycle.  Sharing the lead event's activation across the
    /// batch is indistinguishable from activating each event separately —
    /// read-only events never conflict with one another.
    fn run_fast_batch(
        self: &Arc<Self>,
        slot: &Arc<ContextSlot>,
        batch: Vec<(EventRequest, Sender<EventOutcome>)>,
    ) {
        let _in_flight = InFlightGuard::enter(&self.events_in_flight);
        let lead = batch[0].0.id;
        if let Err(e) = slot.lock.activate(lead, AccessMode::ReadOnly) {
            for (request, tx) in batch {
                self.stats.record_event(false, true, Duration::ZERO);
                if let Some(sink) = self.sink() {
                    sink.responded(request.id);
                }
                let _ = tx.send(EventOutcome {
                    event: request.id,
                    result: Err(e.clone()),
                    latency: Duration::ZERO,
                });
            }
            return;
        }
        let mut done = Vec::with_capacity(batch.len());
        {
            let mut object = slot.object.lock();
            for (request, tx) in batch {
                let started = Instant::now();
                // Recorded under the object lock, matching the slow path's
                // per-context access-ordering contract.
                if let Some(sink) = self.sink() {
                    sink.accessed(request.id, request.target, AccessMode::ReadOnly);
                }
                let mut host = FastPathExecution {
                    inner: self.as_ref(),
                    event: request.id,
                    client: request.client,
                    sub_events: Vec::new(),
                };
                let result = if !object.is_readonly(&request.method) {
                    Err(AeonError::ReadOnlyViolation {
                        context: request.target,
                        method: request.method.clone(),
                    })
                } else {
                    let object = &mut *object;
                    let host_ref = &mut host;
                    let req = &request;
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        let mut invocation = Invocation::new(host_ref, req.target);
                        object.handle(&req.method, &req.args, &mut invocation)
                    }))
                    .unwrap_or_else(|payload| Err(AeonError::from_panic(payload)))
                };
                self.stats.record_method_call(false);
                let subs = if result.is_ok() {
                    host.sub_events
                } else {
                    Vec::new()
                };
                done.push((request, tx, result, started.elapsed(), subs));
            }
        }
        slot.lock.release(lead);
        // Per-event completion bookkeeping mirrors `run_event`: stats and
        // the response point after release, then the sub-events, then the
        // handle resolution.
        for (request, tx, result, latency, subs) in done {
            self.stats.record_event(result.is_ok(), true, latency);
            self.executor.note_fast_path();
            if let Some(server) = self.placement.read().get(&request.target) {
                if let Some(info) = self.servers.write().get_mut(server) {
                    info.events_executed += 1;
                }
            }
            if let Some(sink) = self.sink() {
                sink.responded(request.id);
            }
            for sub in subs {
                let sub_request = EventRequest {
                    id: EventId::new(self.ids.next_raw()),
                    client: request.client,
                    target: sub.target,
                    method: sub.method,
                    args: sub.args,
                    mode: sub.mode,
                };
                if let Some(sink) = self.sink() {
                    sink.invoked(sub_request.id);
                }
                let _ = self.run_event(sub_request);
            }
            let _ = tx.send(EventOutcome {
                event: request.id,
                result,
                latency,
            });
        }
    }
}

/// RAII increment of the events-in-flight gauge; decrements on drop (after
/// the sub-event chain, and even if execution panics).
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    fn enter(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::SeqCst);
        Self(gauge)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The AEON runtime: hosts contexts, executes events, and exposes the
/// elasticity primitives (server management, migration, snapshots) that the
/// elasticity manager builds upon.
///
/// Cloning the handle is cheap and all clones drive the same runtime.
#[derive(Debug, Clone)]
pub struct AeonRuntime {
    inner: Arc<RuntimeInner>,
}

impl AeonRuntime {
    /// Starts building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Creates a client handle for submitting events.
    pub fn client(&self) -> AeonClient {
        AeonClient {
            inner: Arc::clone(&self.inner),
            id: ClientId::new(self.inner.ids.next_raw()),
        }
    }

    /// Registers a factory able to rebuild contexts of `class` from a
    /// snapshot (used by migration and crash recovery).
    pub fn register_class_factory(&self, class: impl Into<String>, factory: ContextFactory) {
        self.inner.factories.write().insert(class.into(), factory);
    }

    /// Installs a live history sink: from now on every event submission,
    /// completion and context access — including snapshot captures and
    /// restore writes — is reported to it.  Replaces any previous sink.
    pub fn install_history_sink(&self, sink: SharedHistorySink) {
        *self.inner.history.write() = Some(sink);
    }

    /// Creates a root context (no owners) and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] / [`AeonError::Config`] when
    /// the requested placement is not satisfiable.
    pub fn create_context(
        &self,
        object: Box<dyn ContextObject>,
        placement: Placement,
    ) -> Result<ContextId> {
        let class = object.class_name().to_string();
        if let Some(classes) = &self.inner.config.class_graph {
            if !classes.contains(&class) {
                return Err(AeonError::Config(format!(
                    "contextclass {class} is not declared in the class graph"
                )));
            }
        }
        let id = ContextId::new(self.inner.ids.next_raw());
        let server = self.inner.pick_server(placement)?;
        self.inner.graph.write().add_context(id, class)?;
        self.inner
            .contexts
            .write()
            .insert(id, ContextSlot::new(id, object));
        self.inner.placement.write().insert(id, server);
        Ok(id)
    }

    /// Creates a context owned by `owners` (at least one), co-located with
    /// its first owner.
    ///
    /// # Errors
    ///
    /// * [`AeonError::Config`] when `owners` is empty.
    /// * [`AeonError::OwnershipViolation`] when the class constraints forbid
    ///   the ownership.
    pub fn create_owned_context(
        &self,
        object: Box<dyn ContextObject>,
        owners: &[ContextId],
    ) -> Result<ContextId> {
        if owners.is_empty() {
            return Err(AeonError::Config(
                "create_owned_context requires at least one owner".into(),
            ));
        }
        self.inner.create_context_owned_by(object, owners, None)
    }

    /// Adds `owner` to the owners of `owned`.
    ///
    /// # Errors
    ///
    /// * [`AeonError::CycleDetected`] when the edge would create a cycle.
    /// * [`AeonError::OwnershipViolation`] when the class constraints forbid
    ///   the edge.
    pub fn add_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.inner.add_ownership(owner, owned)
    }

    /// Removes `owner` from the owners of `owned`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when either context is
    /// unknown.
    pub fn remove_ownership(&self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.inner.remove_ownership(owner, owned)
    }

    /// A snapshot of the current ownership network.
    pub fn ownership_graph(&self) -> OwnershipGraph {
        self.inner.graph.read().clone()
    }

    /// The dominator of `target` under the configured mode.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when `target` is unknown.
    pub fn dominator_of(&self, target: ContextId) -> Result<Dominator> {
        self.inner.dominator_of(target)
    }

    /// Adds a new (logical) server and returns its id.
    pub fn add_server(&self) -> ServerId {
        self.inner.add_server()
    }

    /// Marks a server offline.  The server must not host any contexts —
    /// migrate them away first (the elasticity manager does this when
    /// scaling in).
    ///
    /// # Errors
    ///
    /// * [`AeonError::ServerNotFound`] for unknown servers.
    /// * [`AeonError::Config`] when contexts are still placed on it.
    pub fn remove_server(&self, server: ServerId) -> Result<()> {
        // Go offline first so concurrent placements stop choosing this
        // server, then check it is empty; checking before flipping the flag
        // would let a racing create_context strand a context on it.
        {
            let mut servers = self.inner.servers.write();
            let info = servers
                .get_mut(&server)
                .ok_or(AeonError::ServerNotFound(server))?;
            // Removing an already offline server is an error on every
            // backend (the cluster and simulator have no entry left to
            // stop).
            if !info.online {
                return Err(AeonError::ServerNotFound(server));
            }
            info.online = false;
        }
        let hosted = self.contexts_on(server).len();
        if hosted > 0 {
            if let Some(info) = self.inner.servers.write().get_mut(&server) {
                info.online = true;
            }
            return Err(AeonError::Config(format!(
                "server {server} still hosts {hosted} contexts"
            )));
        }
        Ok(())
    }

    /// Simulates a server crash: the server goes offline immediately and
    /// every context hosted on it becomes unavailable (its lock is poisoned
    /// and its state is dropped) until restored elsewhere with
    /// [`AeonRuntime::restore_context`].  The ownership network and the
    /// placement map keep the contexts' identities, mirroring the
    /// distributed deployment's crash behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ServerNotFound`] for unknown servers.
    pub fn crash_server(&self, server: ServerId) -> Result<()> {
        {
            let mut servers = self.inner.servers.write();
            let info = servers
                .get_mut(&server)
                .ok_or(AeonError::ServerNotFound(server))?;
            info.online = false;
        }
        let hosted = self.contexts_on(server);
        let mut contexts = self.inner.contexts.write();
        for context in hosted {
            if let Some(slot) = contexts.remove(&context) {
                slot.lock.poison();
            }
        }
        Ok(())
    }

    /// Re-hosts a context from externally held state (e.g. a checkpoint)
    /// after its server crashed.  The context keeps its identity and
    /// ownership edges; only its placement and state change.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] when the context was never created.
    /// * [`AeonError::MigrationFailed`] when no factory is registered for
    ///   its class.
    /// * [`AeonError::ServerNotFound`] when `server` is offline.
    pub fn restore_context(
        &self,
        context: ContextId,
        state: &Value,
        server: ServerId,
    ) -> Result<()> {
        match self.inner.servers.read().get(&server) {
            Some(info) if info.online => {}
            _ => return Err(AeonError::ServerNotFound(server)),
        }
        let class = self.inner.graph.read().class_of(context)?.to_string();
        let factory = self
            .inner
            .factories
            .read()
            .get(&class)
            .cloned()
            .ok_or_else(|| AeonError::MigrationFailed {
                context,
                reason: format!("no factory registered for class {class}"),
            })?;
        let object = factory(state);
        // A re-host is recorded as a single-write event: everything the
        // context does afterwards happens-after this install.
        let sink = self.inner.sink();
        let event = EventId::new(self.inner.ids.next_raw());
        if let Some(sink) = &sink {
            sink.invoked(event);
            sink.accessed(event, context, AccessMode::Exclusive);
        }
        self.inner
            .contexts
            .write()
            .insert(context, ContextSlot::new(context, object));
        if let Some(sink) = &sink {
            sink.responded(event);
        }
        self.inner.placement.write().insert(context, server);
        Ok(())
    }

    /// Ids of all online servers.
    pub fn servers(&self) -> Vec<ServerId> {
        self.inner
            .servers
            .read()
            .iter()
            .filter(|(_, info)| info.online)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Per-server info (including offline servers).
    pub fn server_info(&self) -> BTreeMap<ServerId, ServerInfo> {
        self.inner.servers.read().clone()
    }

    /// Current per-server load metrics (the elasticity control-plane feed).
    ///
    /// CPU/memory/IO are approximated from relative context load since the
    /// logical servers share the host machine; the latency is the
    /// runtime-wide mean event latency.  Queue depth is *per server*: the
    /// process-wide worker pool keys every queued task by its target
    /// context, so each task is attributed to the server hosting that
    /// context.  (An even split was used here once — it made every server
    /// look equally loaded and hid exactly the hotspots the elasticity
    /// policies exist to find.)  Tasks whose context has no placement yet
    /// (racing a create/migrate) are spread round-robin so the fleet-wide
    /// sum stays meaningful.
    pub fn server_metrics(&self) -> Vec<ServerMetrics> {
        let servers = self.servers();
        let total_contexts = self.context_count();
        let latency = self.stats().latency_summary();
        let histogram = self.stats().latency_histogram();
        let mut depth: BTreeMap<ServerId, usize> = servers.iter().map(|s| (*s, 0usize)).collect();
        let mut unplaced = 0usize;
        {
            let placement = self.inner.placement.read();
            for (key, count) in self.inner.executor.queued_by_key() {
                match placement
                    .get(&ContextId::new(key))
                    .and_then(|server| depth.get_mut(server))
                {
                    Some(d) => *d += count as usize,
                    None => unplaced += count as usize,
                }
            }
        }
        let fleet = servers.len().max(1);
        servers
            .into_iter()
            .enumerate()
            .map(|(i, server)| {
                let hosted = self.contexts_on(server).len();
                let queue_depth = depth.get(&server).copied().unwrap_or(0)
                    + unplaced / fleet
                    + usize::from(i < unplaced % fleet);
                ServerMetrics::from_load_with_latency(
                    server,
                    hosted,
                    total_contexts,
                    queue_depth,
                    latency.mean_micros / 1_000.0,
                    histogram,
                )
            })
            .collect()
    }

    /// The server currently hosting `context`.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] for unknown contexts.
    pub fn placement_of(&self, context: ContextId) -> Result<ServerId> {
        self.inner
            .placement
            .read()
            .get(&context)
            .copied()
            .ok_or(AeonError::ContextNotFound(context))
    }

    /// All contexts currently placed on `server`.
    pub fn contexts_on(&self, server: ServerId) -> Vec<ContextId> {
        let mut out: Vec<ContextId> = self
            .inner
            .placement
            .read()
            .iter()
            .filter(|(_, s)| **s == server)
            .map(|(c, _)| *c)
            .collect();
        out.sort();
        out
    }

    /// Number of contexts hosted by the runtime.
    pub fn context_count(&self) -> usize {
        self.inner.contexts.read().len()
    }

    /// Migrates `context` to `to_server` without violating consistency: the
    /// migration behaves like an exclusive event on the context (it waits
    /// for in-flight events to drain and delays queued ones), serialises the
    /// context state, re-instantiates it through the registered class
    /// factory (if any), and atomically updates the placement map.
    ///
    /// Returns the number of bytes of serialized state moved.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ContextNotFound`] / [`AeonError::ServerNotFound`] for
    ///   unknown ids.
    /// * [`AeonError::EventAborted`] if the runtime shuts down while the
    ///   migration waits for the context.
    pub fn migrate_context(&self, context: ContextId, to_server: ServerId) -> Result<u64> {
        {
            let servers = self.inner.servers.read();
            match servers.get(&to_server) {
                Some(info) if info.online => {}
                _ => return Err(AeonError::ServerNotFound(to_server)),
            }
        }
        let slot = self.inner.context_slot(context)?;
        // Step II/IV of the protocol: the migration event waits its turn in
        // the context's queue, guaranteeing no event is mid-flight in the
        // context when the state moves.
        let migration_event = EventId::new(self.inner.ids.next_raw());
        self.inner.paused.lock().push(context);
        slot.lock.activate(migration_event, AccessMode::Exclusive)?;
        let moved = {
            let mut object = slot.object.lock();
            let state = object.snapshot();
            let bytes = codec::encode(&state).len() as u64;
            // Re-instantiate through the factory when one is registered:
            // this is what actually happens when the state crosses servers.
            if let Some(factory) = self.inner.factories.read().get(&slot.class) {
                *object = factory(&state);
            }
            bytes
        };
        self.inner.placement.write().insert(context, to_server);
        slot.lock.release(migration_event);
        self.inner.paused.lock().retain(|c| *c != context);
        self.inner.stats.record_migration(moved);
        Ok(moved)
    }

    /// Contexts currently paused for migration.
    pub fn migrating_contexts(&self) -> Vec<ContextId> {
        self.inner.paused.lock().clone()
    }

    /// Takes a consistent snapshot of `root` and all its descendants
    /// (§5.3).  The snapshot is sequenced like an exclusive event targeting
    /// `root` and captures every member while the whole subtree is frozen
    /// (all member locks held simultaneously), so the result is a state
    /// some serial execution of the workload could have produced.
    ///
    /// Contexts whose [`ContextObject::snapshot`] returns `Null` are skipped
    /// (the paper's opt-out convention).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] when `root` is unknown.
    pub fn snapshot_context(&self, root: ContextId) -> Result<Snapshot> {
        let mut snapshot = Snapshot::new(root);
        self.with_frozen_subtree(root, AccessMode::ReadOnly, |id, class, object| {
            let state = object.snapshot();
            if !state.is_null() {
                snapshot.insert(id, class.to_string(), state);
            }
            Ok(())
        })?;
        Ok(snapshot)
    }

    /// Restores context states from a snapshot previously produced by
    /// [`AeonRuntime::snapshot_context`].  Contexts must still exist; their
    /// state is replaced via [`ContextObject::restore`] while the whole
    /// subtree is frozen (the same dominator-sequenced exclusive freeze a
    /// snapshot uses), so concurrent events observe either the pre-restore
    /// or the post-restore state of *every* member, never a mix.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] if a snapshotted context no
    /// longer exists.
    pub fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<()> {
        for (id, _) in snapshot.entries() {
            // Fail before freezing anything when an entry vanished.
            self.inner.context_slot(*id)?;
        }
        let mut restored: std::collections::BTreeSet<ContextId> = std::collections::BTreeSet::new();
        self.with_frozen_subtree(snapshot.root(), AccessMode::Exclusive, |id, _, object| {
            if let Some(entry) = snapshot.get(id) {
                object.restore(&entry.state);
                restored.insert(id);
            }
            Ok(())
        })?;
        // Entries that left the subtree since the capture (ownership edits)
        // are restored individually under a brief exclusive activation.
        for (id, entry) in snapshot.entries() {
            if restored.contains(id) {
                continue;
            }
            let slot = self.inner.context_slot(*id)?;
            let event = EventId::new(self.inner.ids.next_raw());
            let sink = self.inner.sink();
            if let Some(sink) = &sink {
                sink.invoked(event);
            }
            slot.lock.activate(event, AccessMode::Exclusive)?;
            {
                let mut object = slot.object.lock();
                if let Some(sink) = &sink {
                    sink.accessed(event, *id, AccessMode::Exclusive);
                }
                object.restore(&entry.state);
            }
            slot.lock.release(event);
            if let Some(sink) = &sink {
                sink.responded(event);
            }
        }
        Ok(())
    }

    /// Freezes the subtree rooted at `root` — sequencing at the dominator
    /// exactly like an exclusive event targeting `root`, then exclusively
    /// activating every member in owner-before-owned order and holding all
    /// the locks — and runs `visit` on each member at the frozen cut.
    /// Member accesses are reported to the history sink with `recorded_as`
    /// (reads for snapshot captures, writes for restores).
    fn with_frozen_subtree(
        &self,
        root: ContextId,
        recorded_as: AccessMode,
        mut visit: impl FnMut(ContextId, &str, &mut Box<dyn ContextObject>) -> Result<()>,
    ) -> Result<()> {
        let event = EventId::new(self.inner.ids.next_raw());
        let sink = self.inner.sink();
        if let Some(sink) = &sink {
            sink.invoked(event);
        }
        let dominator = self.inner.dominator_of(root)?;
        let mut held: Vec<Arc<ContextSlot>> = Vec::new();
        let mut holds_root = false;
        match dominator {
            Dominator::Context(dom) if dom != root => {
                let slot = self.inner.context_slot(dom)?;
                slot.lock.activate(event, AccessMode::Exclusive)?;
                held.push(slot);
            }
            Dominator::GlobalRoot => {
                self.inner
                    .global_root
                    .activate(event, AccessMode::Exclusive)?;
                holds_root = true;
            }
            _ => {}
        }
        let members = self.inner.graph.read().subtree_topological(root)?;
        let result = (|| -> Result<()> {
            for id in members {
                let slot = self.inner.context_slot(id)?;
                slot.lock.activate(event, AccessMode::Exclusive)?;
                held.push(slot.clone());
                let mut object = slot.object.lock();
                if let Some(sink) = &sink {
                    sink.accessed(event, id, recorded_as);
                }
                visit(id, &slot.class, &mut object)?;
                drop(object);
            }
            Ok(())
        })();
        while let Some(slot) = held.pop() {
            slot.lock.release(event);
        }
        if holds_root {
            self.inner.global_root.release(event);
        }
        if let Some(sink) = &sink {
            sink.responded(event);
        }
        result
    }

    /// Runtime-wide statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.inner.stats
    }

    /// Call-summary sanitizer findings: actual invoke edges observed at
    /// runtime that the statically declared `calls [...]` summaries do not
    /// cover.  Only populated in debug builds (the recording is compiled
    /// to a no-op in release); always empty when no class graph is
    /// installed or no summaries are declared.
    pub fn call_summary_violations(&self) -> Vec<String> {
        self.inner
            .summary_violations
            .lock()
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events currently executing, counting an event as in
    /// flight until its whole causal chain (dispatched sub-events
    /// included) has finished.
    pub fn events_in_flight(&self) -> u64 {
        self.inner.events_in_flight.load(Ordering::SeqCst)
    }

    /// Counters of the event worker pool (queue depth, spill activity,
    /// caught panics).
    pub fn executor_stats(&self) -> ExecutorStats {
        self.inner.executor.stats()
    }

    /// Shuts the runtime down: subsequent submissions fail, events blocked
    /// on context locks are aborted, and the worker pool is stopped
    /// (queued events resolve their handles as disconnected).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for slot in self.inner.contexts.read().values() {
            slot.lock.poison();
        }
        self.inner.global_root.poison();
        // Poisoning first unblocks any executing event, so joining the
        // pool cannot hang on a lock waiter.
        self.inner.executor.shutdown();
        // Fast-path queues hold their completion senders outside the
        // executor; sweep them so pending certified events resolve as
        // disconnected too.
        for slot in self.inner.contexts.read().values() {
            RuntimeInner::fail_fast_queue(slot);
        }
    }
}

/// A client handle: the entry point for submitting events.
#[derive(Debug, Clone)]
pub struct AeonClient {
    inner: Arc<RuntimeInner>,
    id: ClientId,
}

impl AeonClient {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Submits an exclusive (update) event and returns a completion handle.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::RuntimeShutdown`] after shutdown and
    /// [`AeonError::ContextNotFound`] for unknown targets.
    pub fn submit_event(&self, target: ContextId, method: &str, args: Args) -> Result<EventHandle> {
        self.submit(target, method, args, AccessMode::Exclusive)
    }

    /// Submits a read-only event (the paper's `ro` methods); read-only
    /// events of the same context may execute concurrently.
    ///
    /// When the class graph certifies the method for the fast path (`ro`
    /// with an empty `calls []` summary), the event skips dominator
    /// sequencing and executes under a shared activation of the target
    /// alone, batched with other certified events on the same context; see
    /// [`RuntimeBuilder::readonly_fast_path`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AeonClient::submit_event`].
    pub fn submit_readonly_event(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<EventHandle> {
        self.submit(target, method, args, AccessMode::ReadOnly)
    }

    /// Submits an event with an explicit access mode: the primitive behind
    /// [`AeonClient::submit_event`] and the `aeon-api` `Session`
    /// implementation.  The `call`/`call_readonly` convenience wrappers live
    /// on the `Session` trait, not here.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::RuntimeShutdown`] after shutdown and
    /// [`AeonError::ContextNotFound`] for unknown targets.
    pub fn submit(
        &self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<EventHandle> {
        if self.inner.is_shutdown() {
            return Err(AeonError::RuntimeShutdown);
        }
        let slot = self.inner.context_slot(target)?;
        let request = EventRequest {
            id: EventId::new(self.inner.ids.next_raw()),
            client: Some(self.id),
            target,
            method: method.to_string(),
            args,
            mode,
        };
        // Recorded before the event is enqueued, so the invocation
        // timestamp can never be later than the true submission point.
        if let Some(sink) = self.inner.sink() {
            sink.invoked(request.id);
        }
        if mode.is_read_only() && self.inner.is_certified_readonly(&slot.class, method) {
            return Ok(self.inner.spawn_fast_event(slot, request));
        }
        Ok(self.inner.spawn_event(request))
    }
}

/// Alias documenting the shape of events dispatched from within events.
pub use crate::invocation::SubEvent as DispatchedEvent;
