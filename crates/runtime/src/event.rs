//! Event descriptors and completion handles.

use aeon_types::{AccessMode, AeonError, Args, ClientId, ContextId, EventId, Result, Value};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::time::{Duration, Instant};

/// A client request to execute `method` on `target` as an atomic event.
#[derive(Debug, Clone)]
pub struct EventRequest {
    /// Unique event id assigned by the runtime.
    pub id: EventId,
    /// The client that issued the event (if any; sub-events inherit their
    /// creator's client).
    pub client: Option<ClientId>,
    /// The context on which the event lands.
    pub target: ContextId,
    /// Method to execute at the target.
    pub method: String,
    /// Arguments of the method.
    pub args: Args,
    /// Read-only or exclusive execution.
    pub mode: AccessMode,
}

/// The result of an event's execution, delivered to the [`EventHandle`].
#[derive(Debug, Clone)]
pub struct EventOutcome {
    /// The event this outcome belongs to.
    pub event: EventId,
    /// The value returned by the target method, or the error that aborted
    /// the event.
    pub result: Result<Value>,
    /// Wall-clock latency from submission to completion.
    pub latency: Duration,
}

/// A handle on a submitted event; resolves when the event completes.
#[derive(Debug)]
pub struct EventHandle {
    event: EventId,
    submitted: Instant,
    receiver: Receiver<EventOutcome>,
}

impl EventHandle {
    /// Creates the `(completion sender, handle)` pair for an event.
    pub(crate) fn new(event: EventId) -> (Sender<EventOutcome>, EventHandle) {
        let (tx, rx) = bounded(1);
        (
            tx,
            EventHandle {
                event,
                submitted: Instant::now(),
                receiver: rx,
            },
        )
    }

    /// The id of the event being awaited.
    pub fn event_id(&self) -> EventId {
        self.event
    }

    /// Time elapsed since the event was submitted.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }

    /// Blocks until the event completes and returns its result value.
    ///
    /// # Errors
    ///
    /// Propagates the event's own error, or [`AeonError::RuntimeShutdown`]
    /// if the runtime was torn down before completion.
    pub fn wait(self) -> Result<Value> {
        self.wait_outcome().and_then(|outcome| outcome.result)
    }

    /// Blocks until the event completes and returns the full outcome
    /// (including measured latency).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::RuntimeShutdown`] if the runtime was torn down
    /// before completion.
    pub fn wait_outcome(self) -> Result<EventOutcome> {
        self.receiver.recv().map_err(|_| AeonError::RuntimeShutdown)
    }

    /// Waits up to `timeout` for the event; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::RuntimeShutdown`] if the runtime was torn down
    /// before completion.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<EventOutcome>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(outcome) => Ok(Some(outcome)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(AeonError::RuntimeShutdown)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_receives_outcome() {
        let (tx, handle) = EventHandle::new(EventId::new(7));
        assert_eq!(handle.event_id(), EventId::new(7));
        tx.send(EventOutcome {
            event: EventId::new(7),
            result: Ok(Value::from(3i64)),
            latency: Duration::from_millis(1),
        })
        .unwrap();
        assert_eq!(handle.wait().unwrap(), Value::from(3i64));
    }

    #[test]
    fn handle_propagates_event_errors() {
        let (tx, handle) = EventHandle::new(EventId::new(8));
        tx.send(EventOutcome {
            event: EventId::new(8),
            result: Err(AeonError::app("boom")),
            latency: Duration::ZERO,
        })
        .unwrap();
        assert!(matches!(handle.wait(), Err(AeonError::Application(_))));
    }

    #[test]
    fn dropped_sender_is_reported_as_shutdown() {
        let (tx, handle) = EventHandle::new(EventId::new(9));
        drop(tx);
        assert!(matches!(handle.wait(), Err(AeonError::RuntimeShutdown)));
    }

    #[test]
    fn wait_timeout_returns_none_when_pending() {
        let (_tx, handle) = EventHandle::new(EventId::new(10));
        let res = handle.wait_timeout(Duration::from_millis(5)).unwrap();
        assert!(res.is_none());
    }
}
