//! Event execution: the engine that runs a single event across contexts.
//!
//! An [`EventExecution`] owns everything an in-flight event needs: the locks
//! it has acquired, its call stack, the queue of deferred `async` calls and
//! the sub-events it has dispatched.  The [`Invocation`] handed to context
//! methods is a thin view over the execution that exposes the operations the
//! paper's language offers inside an event: synchronous calls, `async`
//! calls, `event` dispatch, and ownership-graph mutation (creating child
//! contexts, adding/removing owners).
//!
//! [`Invocation`] is deliberately decoupled from the in-process engine
//! through the [`InvocationHost`] trait: the distributed deployment in
//! `aeon-cluster` executes the very same [`ContextObject`] implementations
//! by providing its own host, in which a "call to an owned context" may
//! travel across the message-passing network to another server.

use crate::context::{ContextObject, ContextSlot};
use crate::event::EventRequest;
use crate::runtime::RuntimeInner;
use aeon_ownership::Dominator;
use aeon_types::{AccessMode, AeonError, Args, ClientId, ContextId, EventId, Result, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// A deferred (`async`) method call, executed after the synchronous part of
/// the event finishes but before the event terminates.
#[derive(Debug, Clone)]
struct AsyncCall {
    caller: ContextId,
    target: ContextId,
    method: String,
    args: Args,
}

/// A sub-event dispatched from within an event; it becomes a fresh event
/// once its creator terminates (§3: "an event that is dispatched within
/// another event ... will execute after its creator event finishes").
#[derive(Debug, Clone)]
pub struct SubEvent {
    /// Target context of the new event.
    pub target: ContextId,
    /// Method to run.
    pub method: String,
    /// Arguments.
    pub args: Args,
    /// Access mode of the new event.
    pub mode: AccessMode,
}

/// The capability an [`Invocation`] delegates to.
///
/// The in-process engine ([`EventExecution`], used by
/// [`crate::AeonRuntime`]) and the distributed engine (`aeon-cluster`)
/// both implement this trait, so application [`ContextObject`]s are written
/// once and run unchanged on either.
pub trait InvocationHost {
    /// Id of the running event.
    fn event_id(&self) -> EventId;

    /// Client that issued the event, if any.
    fn client(&self) -> Option<ClientId>;

    /// Access mode of the running event.
    fn mode(&self) -> AccessMode;

    /// Performs a synchronous method call from `caller` to `target`.
    fn call(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<Value>;

    /// Schedules an asynchronous method call from `caller` to `target`.
    fn call_async(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<()>;

    /// Dispatches a new event to start after the current one terminates.
    fn dispatch_event(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<()>;

    /// Creates a new context owned by `owner`.
    fn create_child(
        &mut self,
        owner: ContextId,
        object: Box<dyn ContextObject>,
    ) -> Result<ContextId>;

    /// Adds `owner` as an owner of `owned`.
    fn add_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()>;

    /// Removes `owner` from the owners of `owned`.
    fn remove_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()>;

    /// Direct children of `parent`, optionally filtered by class name.
    fn children(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>>;
}

/// The running state of one event.
pub(crate) struct EventExecution {
    inner: Arc<RuntimeInner>,
    event: EventId,
    client: Option<ClientId>,
    mode: AccessMode,
    /// Context locks held, in acquisition order (released in reverse).
    held: Vec<Arc<ContextSlot>>,
    /// Whether the event holds the global-root sequencer.
    holds_global_root: bool,
    /// Contexts (and the method executing in each) currently on the
    /// synchronous call stack (re-entrance guard; the method name feeds the
    /// debug-build call-summary sanitizer).
    call_stack: Vec<(ContextId, String)>,
    /// Deferred asynchronous calls.
    pending_async: VecDeque<AsyncCall>,
    /// Events dispatched from within this event.
    sub_events: Vec<SubEvent>,
}

impl EventExecution {
    /// Runs `request` to completion and returns its result together with the
    /// sub-events it dispatched.
    pub(crate) fn run(
        inner: Arc<RuntimeInner>,
        request: &EventRequest,
    ) -> (Result<Value>, Vec<SubEvent>) {
        let mut exec = EventExecution {
            inner,
            event: request.id,
            client: request.client,
            mode: request.mode,
            held: Vec::new(),
            holds_global_root: false,
            call_stack: Vec::new(),
            pending_async: VecDeque::new(),
            sub_events: Vec::new(),
        };
        // A panicking contextclass method must not leave the event's locks
        // activated forever or kill the pool worker: catch the unwind,
        // release everything below, and fail the event with a proper
        // error.  (Partially applied state changes before the panic are
        // the application's responsibility, as with any aborted unwind.)
        let result = {
            let exec = &mut exec;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || exec.execute(request)))
                .unwrap_or_else(|payload| Err(AeonError::from_panic(payload)))
        };
        exec.release_all();
        let subs = if result.is_ok() {
            std::mem::take(&mut exec.sub_events)
        } else {
            Vec::new()
        };
        (result, subs)
    }

    fn execute(&mut self, request: &EventRequest) -> Result<Value> {
        // Step 1: sequence the event at the dominator of its target
        // (Algorithm 2, `to execute` + `dispatchEvent`).
        let dominator = self.inner.dominator_of(request.target)?;
        match dominator {
            Dominator::Context(dom) => {
                if dom != request.target {
                    let slot = self.inner.context_slot(dom)?;
                    self.activate_slot(slot)?;
                }
            }
            Dominator::GlobalRoot => {
                self.inner.global_root.activate(self.event, self.mode)?;
                self.holds_global_root = true;
            }
        }

        // Step 2: execute at the target (`scheduleNext` / `execute`).
        let mut result = self.invoke(None, request.target, &request.method, &request.args);

        // Step 3: drain deferred async calls (they complete within the
        // event; failures fail the event).
        while let Some(call) = self.pending_async.pop_front() {
            let r = self.invoke(Some(call.caller), call.target, &call.method, &call.args);
            self.inner.stats.record_method_call(true);
            if result.is_ok() {
                if let Err(e) = r {
                    result = Err(e);
                }
            }
        }
        result
    }

    /// Invokes `method` on `target`, activating the context first.
    pub(crate) fn invoke(
        &mut self,
        caller: Option<ContextId>,
        target: ContextId,
        method: &str,
        args: &Args,
    ) -> Result<Value> {
        // Ownership check: calls may only go along (transitive) ownership
        // edges (§3).
        if let Some(caller) = caller {
            if !self.inner.may_call(caller, target) {
                return Err(AeonError::ownership(caller, target));
            }
            // Debug-build sanitizer: a synchronous call's caller is the
            // context on top of the stack (async calls are recorded at
            // schedule time, and drain with an empty stack).
            if cfg!(debug_assertions) {
                if let Some((top, top_method)) = self.call_stack.last() {
                    if *top == caller {
                        let top_method = top_method.clone();
                        self.inner
                            .record_call_edge(caller, &top_method, target, method);
                    }
                }
            }
        }
        // Re-entrance guard: the ownership DAG is acyclic, so a well-formed
        // application never calls back into a context already on the stack.
        if self.call_stack.iter().any(|(c, _)| *c == target) {
            return Err(AeonError::internal(format!(
                "re-entrant call into context {target} within event {}",
                self.event
            )));
        }
        let slot = self.inner.context_slot(target)?;
        self.activate_slot(slot.clone())?;
        self.call_stack.push((target, method.to_string()));
        let outcome = {
            let mut object = slot.object.lock();
            // Recorded under the object lock, so the per-context record
            // order equals the order the context observed the accesses.
            if let Some(sink) = self.inner.sink() {
                sink.accessed(self.event, target, self.mode);
            }
            if self.mode.is_read_only() && !object.is_readonly(method) {
                Err(AeonError::ReadOnlyViolation {
                    context: target,
                    method: method.to_string(),
                })
            } else {
                let mut invocation = Invocation::new(self, target);
                object.handle(method, args, &mut invocation)
            }
        };
        self.call_stack.pop();
        self.inner.stats.record_method_call(false);
        outcome
    }

    /// Activates (locks) the slot for this event unless already held.
    fn activate_slot(&mut self, slot: Arc<ContextSlot>) -> Result<()> {
        if self.held.iter().any(|s| s.id == slot.id) {
            return Ok(());
        }
        slot.lock.activate(self.event, self.mode)?;
        self.held.push(slot);
        Ok(())
    }

    /// Releases every held lock in reverse acquisition order ("locks on the
    /// contexts accessed during an event are released in the reverse order
    /// on which they are locked", §4).
    fn release_all(&mut self) {
        while let Some(slot) = self.held.pop() {
            slot.lock.release(self.event);
        }
        if self.holds_global_root {
            self.inner.global_root.release(self.event);
            self.holds_global_root = false;
        }
    }
}

impl InvocationHost for EventExecution {
    fn event_id(&self) -> EventId {
        self.event
    }

    fn client(&self) -> Option<ClientId> {
        self.client
    }

    fn mode(&self) -> AccessMode {
        self.mode
    }

    fn call(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<Value> {
        self.invoke(Some(caller), target, method, &args)
    }

    fn call_async(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<()> {
        if !self.inner.may_call(caller, target) {
            return Err(AeonError::ownership(caller, target));
        }
        // Debug-build sanitizer: the edge belongs to the method scheduling
        // the call, which is the one executing in `caller` right now.
        if cfg!(debug_assertions) {
            if let Some((top, top_method)) = self.call_stack.last() {
                if *top == caller {
                    let top_method = top_method.clone();
                    self.inner
                        .record_call_edge(caller, &top_method, target, method);
                }
            }
        }
        self.pending_async.push_back(AsyncCall {
            caller,
            target,
            method: method.to_string(),
            args,
        });
        Ok(())
    }

    fn dispatch_event(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<()> {
        self.inner.stats.record_sub_event();
        self.sub_events.push(SubEvent {
            target,
            method: method.to_string(),
            args,
            mode,
        });
        Ok(())
    }

    fn create_child(
        &mut self,
        owner: ContextId,
        object: Box<dyn ContextObject>,
    ) -> Result<ContextId> {
        self.inner
            .create_context_owned_by(object, &[owner], Some(owner))
    }

    fn add_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.inner.add_ownership(owner, owned)
    }

    fn remove_ownership(&mut self, owner: ContextId, owned: ContextId) -> Result<()> {
        self.inner.remove_ownership(owner, owned)
    }

    fn children(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>> {
        self.inner.children_of(parent, class)
    }
}

/// Host for the analyzer-certified read-only fast path.
///
/// A certified method is declared `ro` with an empty `calls []` summary, so
/// its event was admitted without dominator sequencing and its lock
/// footprint must stay at the single target context: acquiring any further
/// lock here would be an *unsequenced* acquisition, and two fast-path
/// readers expanding their footprints in opposite orders around a writer
/// could deadlock.  An attempted call therefore means the declared summary
/// lied, and it surfaces as a hard error instead of a lock acquisition.
///
/// Read-only sub-event dispatch remains available: sub-events start as
/// fresh, fully sequenced events after their creator terminates, so they
/// never grow this event's footprint.
pub(crate) struct FastPathExecution<'a> {
    pub(crate) inner: &'a RuntimeInner,
    pub(crate) event: EventId,
    pub(crate) client: Option<ClientId>,
    pub(crate) sub_events: Vec<SubEvent>,
}

impl FastPathExecution<'_> {
    fn summary_lie(caller: ContextId, target: ContextId, method: &str) -> AeonError {
        AeonError::internal(format!(
            "read-only fast path: context {caller} attempted a call to {target}::{method}, \
             but its method was certified on an empty `calls []` summary"
        ))
    }
}

impl InvocationHost for FastPathExecution<'_> {
    fn event_id(&self) -> EventId {
        self.event
    }

    fn client(&self) -> Option<ClientId> {
        self.client
    }

    fn mode(&self) -> AccessMode {
        AccessMode::ReadOnly
    }

    fn call(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        _args: Args,
    ) -> Result<Value> {
        Err(Self::summary_lie(caller, target, method))
    }

    fn call_async(
        &mut self,
        caller: ContextId,
        target: ContextId,
        method: &str,
        _args: Args,
    ) -> Result<()> {
        Err(Self::summary_lie(caller, target, method))
    }

    fn dispatch_event(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<()> {
        self.inner.stats.record_sub_event();
        self.sub_events.push(SubEvent {
            target,
            method: method.to_string(),
            args,
            mode,
        });
        Ok(())
    }

    // The graph mutators below are unreachable: `Invocation` rejects them in
    // read-only mode before delegating.  Kept as hard errors, not panics, so
    // a future host consumer cannot turn them into state changes.
    fn create_child(
        &mut self,
        owner: ContextId,
        _object: Box<dyn ContextObject>,
    ) -> Result<ContextId> {
        Err(AeonError::ReadOnlyViolation {
            context: owner,
            method: "create_child".into(),
        })
    }

    fn add_ownership(&mut self, owner: ContextId, _owned: ContextId) -> Result<()> {
        Err(AeonError::ReadOnlyViolation {
            context: owner,
            method: "add_ownership".into(),
        })
    }

    fn remove_ownership(&mut self, owner: ContextId, _owned: ContextId) -> Result<()> {
        Err(AeonError::ReadOnlyViolation {
            context: owner,
            method: "remove_ownership".into(),
        })
    }

    fn children(&self, parent: ContextId, class: Option<&str>) -> Result<Vec<ContextId>> {
        self.inner.children_of(parent, class)
    }
}

/// The capability handed to [`ContextObject::handle`]: everything a context
/// method may do with the rest of the system while an event executes in it.
pub struct Invocation<'a> {
    host: &'a mut dyn InvocationHost,
    current: ContextId,
}

impl<'a> Invocation<'a> {
    /// Creates an invocation view for `current` on top of a host engine.
    ///
    /// This is called by execution engines (the in-process runtime, the
    /// distributed cluster); application code only ever receives a ready
    /// `&mut Invocation`.
    pub fn new(host: &'a mut dyn InvocationHost, current: ContextId) -> Self {
        Self { host, current }
    }

    /// The context currently executing.
    pub fn self_id(&self) -> ContextId {
        self.current
    }

    /// The id of the running event.
    pub fn event_id(&self) -> EventId {
        self.host.event_id()
    }

    /// The client that issued the event, if any.
    pub fn client(&self) -> Option<ClientId> {
        self.host.client()
    }

    /// Whether the running event is read-only.
    pub fn is_read_only(&self) -> bool {
        self.host.mode().is_read_only()
    }

    /// Performs a synchronous method call on a context owned (directly or
    /// transitively) by the current context, waiting for its result.
    ///
    /// # Errors
    ///
    /// * [`AeonError::OwnershipViolation`] when the current context does not
    ///   own `target`.
    /// * Whatever error the callee returns.
    pub fn call(&mut self, target: ContextId, method: &str, args: Args) -> Result<Value> {
        self.host.call(self.current, target, method, args)
    }

    /// Schedules an asynchronous (`async`-decorated) method call on an owned
    /// context.  The call executes before the event terminates, but the
    /// caller does not wait for it; its return value is discarded.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::OwnershipViolation`] when the current context
    /// does not own `target` (checked eagerly so the programming error
    /// surfaces at the call site).
    pub fn call_async(&mut self, target: ContextId, method: &str, args: Args) -> Result<()> {
        self.host.call_async(self.current, target, method, args)
    }

    /// Dispatches a new event from within this event.  The new event starts
    /// only after the current event has terminated and is sequenced like any
    /// client event.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ReadOnlyViolation`] when called from a read-only
    /// event (a read-only event must not cause state changes).
    pub fn dispatch_event(&mut self, target: ContextId, method: &str, args: Args) -> Result<()> {
        self.dispatch_event_with_mode(target, method, args, AccessMode::Exclusive)
    }

    /// Dispatches a new read-only event from within this event.
    pub fn dispatch_readonly_event(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
    ) -> Result<()> {
        self.dispatch_event_with_mode(target, method, args, AccessMode::ReadOnly)
    }

    fn dispatch_event_with_mode(
        &mut self,
        target: ContextId,
        method: &str,
        args: Args,
        mode: AccessMode,
    ) -> Result<()> {
        if self.host.mode().is_read_only() && mode.is_exclusive() {
            return Err(AeonError::ReadOnlyViolation {
                context: self.current,
                method: method.to_string(),
            });
        }
        self.host.dispatch_event(target, method, args, mode)
    }

    /// Creates a new context owned by the current context and returns its
    /// id.  The ownership graph is updated atomically; the new context is
    /// placed on the same server as its owner (locality by default, as the
    /// paper's runtime does for Rooms/Players/Items).
    ///
    /// # Errors
    ///
    /// * [`AeonError::ReadOnlyViolation`] from read-only events.
    /// * [`AeonError::OwnershipViolation`] if the class constraints forbid
    ///   this parent/child pair.
    pub fn create_child(&mut self, object: Box<dyn ContextObject>) -> Result<ContextId> {
        if self.host.mode().is_read_only() {
            return Err(AeonError::ReadOnlyViolation {
                context: self.current,
                method: "create_child".into(),
            });
        }
        self.host.create_child(self.current, object)
    }

    /// Adds the current context as an owner of `owned` (sharing state).
    ///
    /// # Errors
    ///
    /// * [`AeonError::ReadOnlyViolation`] from read-only events.
    /// * [`AeonError::CycleDetected`] / [`AeonError::OwnershipViolation`]
    ///   when the edge would violate the DAG or the class constraints.
    pub fn add_ownership(&mut self, owned: ContextId) -> Result<()> {
        if self.host.mode().is_read_only() {
            return Err(AeonError::ReadOnlyViolation {
                context: self.current,
                method: "add_ownership".into(),
            });
        }
        self.host.add_ownership(self.current, owned)
    }

    /// Removes the current context from the owners of `owned`.
    ///
    /// # Errors
    ///
    /// * [`AeonError::ReadOnlyViolation`] from read-only events.
    /// * [`AeonError::ContextNotFound`] when `owned` is unknown.
    pub fn remove_ownership(&mut self, owned: ContextId) -> Result<()> {
        if self.host.mode().is_read_only() {
            return Err(AeonError::ReadOnlyViolation {
                context: self.current,
                method: "remove_ownership".into(),
            });
        }
        self.host.remove_ownership(self.current, owned)
    }

    /// The direct children (owned contexts) of the current context,
    /// optionally filtered by contextclass name.
    ///
    /// This mirrors the paper's `children[Room]` syntax in Listing 1.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::ContextNotFound`] if the current context has
    /// been removed concurrently.
    pub fn children(&self, class: Option<&str>) -> Result<Vec<ContextId>> {
        self.host.children(self.current, class)
    }
}

impl std::fmt::Debug for Invocation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invocation")
            .field("event", &self.host.event_id())
            .field("current", &self.current)
            .field("mode", &self.host.mode())
            .finish()
    }
}
