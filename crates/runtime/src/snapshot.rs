//! Consistent snapshots of context subtrees (§5.3).

use aeon_types::{AeonError, ContextId, Result, Value};
use std::collections::BTreeMap;

/// The snapshotted state of one context.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Contextclass of the snapshotted context.
    pub class: String,
    /// The state returned by [`crate::ContextObject::snapshot`].
    pub state: Value,
}

/// A consistent snapshot of a context and its descendants.
///
/// Snapshots can be serialised to a [`Value`] (and hence to bytes through
/// `aeon_types::codec`) so that the elasticity manager can persist them in
/// cloud storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    root: ContextId,
    entries: BTreeMap<ContextId, SnapshotEntry>,
}

impl Snapshot {
    /// Creates an empty snapshot rooted at `root`.
    pub fn new(root: ContextId) -> Self {
        Self {
            root,
            entries: BTreeMap::new(),
        }
    }

    /// The context the snapshot was requested on.
    pub fn root(&self) -> ContextId {
        self.root
    }

    /// Adds the state of one context.
    pub fn insert(&mut self, id: ContextId, class: impl Into<String>, state: Value) {
        self.entries.insert(
            id,
            SnapshotEntry {
                class: class.into(),
                state,
            },
        );
    }

    /// Number of contexts captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no context state was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the captured entries in context-id order.
    pub fn entries(&self) -> impl Iterator<Item = (&ContextId, &SnapshotEntry)> {
        self.entries.iter()
    }

    /// State captured for `id`, if any.
    pub fn get(&self, id: ContextId) -> Option<&SnapshotEntry> {
        self.entries.get(&id)
    }

    /// Serialises the snapshot into a [`Value`].
    pub fn to_value(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|(id, entry)| {
                Value::map([
                    ("id", Value::from(*id)),
                    ("class", Value::from(entry.class.clone())),
                    ("state", entry.state.clone()),
                ])
            })
            .collect();
        Value::map([
            ("root", Value::from(self.root)),
            ("entries", Value::List(entries)),
        ])
    }

    /// Reconstructs a snapshot from [`Snapshot::to_value`] output.
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::Codec`] when the value does not have the
    /// expected shape.
    pub fn from_value(value: &Value) -> Result<Self> {
        let root = value
            .get("root")
            .and_then(Value::as_context)
            .ok_or_else(|| AeonError::Codec("snapshot: missing root".into()))?;
        let mut snapshot = Snapshot::new(root);
        let entries = value
            .get("entries")
            .and_then(Value::as_list)
            .ok_or_else(|| AeonError::Codec("snapshot: missing entries".into()))?;
        for entry in entries {
            let id = entry
                .get("id")
                .and_then(Value::as_context)
                .ok_or_else(|| AeonError::Codec("snapshot entry: missing id".into()))?;
            let class = entry
                .get("class")
                .and_then(Value::as_str)
                .ok_or_else(|| AeonError::Codec("snapshot entry: missing class".into()))?;
            let state = entry.get("state").cloned().unwrap_or(Value::Null);
            snapshot.insert(id, class, state);
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_value() {
        let mut s = Snapshot::new(ContextId::new(1));
        s.insert(
            ContextId::new(1),
            "Room",
            Value::map([("players", Value::from(2i64))]),
        );
        s.insert(
            ContextId::new(2),
            "Player",
            Value::map([("gold", Value::from(10i64))]),
        );
        let v = s.to_value();
        let restored = Snapshot::from_value(&v).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.root(), ContextId::new(1));
        assert_eq!(restored.get(ContextId::new(2)).unwrap().class, "Player");
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(Snapshot::from_value(&Value::Null).is_err());
        assert!(
            Snapshot::from_value(&Value::map([("root", Value::from(ContextId::new(1)))])).is_err()
        );
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::new(ContextId::new(5));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.get(ContextId::new(5)).is_none());
        let restored = Snapshot::from_value(&s.to_value()).unwrap();
        assert!(restored.is_empty());
    }
}
