//! Declarative method dispatch for contextclasses.
//!
//! The paper extends C++ with a `contextclass` keyword whose compiler knows,
//! per class, the method surface and which methods are `readonly` (`ro`).
//! This module is the library equivalent: instead of every contextclass
//! hand-writing a `match method` block in [`ContextObject::handle`] and a
//! parallel string list in [`ContextObject::is_readonly`] (which inevitably
//! drift apart), a class declares its methods **once** in a [`MethodTable`]
//! and the runtime derives dispatch, `ro` classification, uniform
//! [`AeonError::UnknownMethod`] behaviour, and machine-readable metadata
//! (fed to `aeon-ownership`'s static analysis via
//! [`MethodTable::declare_in`]) from it.
//!
//! Most classes use the [`context_class!`] macro; classes with per-instance
//! class names (such as [`crate::KvContext`]) implement [`ContextClass`] by
//! hand and override [`ContextClass::class_name`].
//!
//! # Examples
//!
//! ```
//! use aeon_runtime::{context_class, AeonRuntime, ContextClass, Invocation, Placement};
//! use aeon_types::{args, Args, Result, Value};
//!
//! #[derive(Default)]
//! struct Counter {
//!     count: i64,
//! }
//!
//! impl Counter {
//!     fn add(&mut self, args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
//!         self.count += args.get_i64(0)?;
//!         Ok(Value::from(self.count))
//!     }
//!
//!     fn get(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
//!         Ok(Value::from(self.count))
//!     }
//! }
//!
//! context_class! {
//!     Counter: "Counter" {
//!         method "add" => Counter::add,
//!         ro method "get" => Counter::get,
//!     }
//! }
//!
//! # fn main() -> Result<()> {
//! assert!(Counter::table().is_readonly("get"));
//! let runtime = AeonRuntime::builder().build()?;
//! let counter = runtime.create_context(Box::new(Counter::default()), Placement::Auto)?;
//! let client = runtime.client();
//! assert_eq!(client.submit_event(counter, "add", args![4])?.wait()?, Value::from(4i64));
//! runtime.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::context::ContextObject;
use crate::invocation::Invocation;
use aeon_ownership::{ClassGraph, MethodRef};
use aeon_types::{AeonError, Args, Result, Value};

/// The signature of a declarative method handler.
pub type Handler<T> = fn(&mut T, &Args, &mut Invocation<'_>) -> Result<Value>;

/// One declared method of a contextclass.
pub struct MethodEntry<T> {
    name: &'static str,
    readonly: bool,
    /// Declared outgoing call summary (`"Class::method"` strings); `None`
    /// when the method never declared one.
    calls: Option<&'static [&'static str]>,
    handler: Handler<T>,
}

impl<T> MethodEntry<T> {
    /// Method name as dispatched.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether the method was declared `readonly`.
    pub fn readonly(&self) -> bool {
        self.readonly
    }

    /// The declared outgoing call summary (`"Class::method"` strings), or
    /// `None` when the method never declared one.  An empty slice declares
    /// "calls nothing".
    pub fn calls(&self) -> Option<&'static [&'static str]> {
        self.calls
    }
}

/// The declared method surface of a contextclass: dispatch table, `ro`
/// marks, and metadata in one place.
pub struct MethodTable<T> {
    class: &'static str,
    entries: Vec<MethodEntry<T>>,
}

impl<T> MethodTable<T> {
    /// Starts building a table for `class`.
    pub fn builder(class: &'static str) -> MethodTableBuilder<T> {
        MethodTableBuilder {
            table: MethodTable {
                class,
                entries: Vec::new(),
            },
        }
    }

    /// The static class name the table was declared for.
    pub fn class(&self) -> &'static str {
        self.class
    }

    /// The declared entry for `method`, if any.
    pub fn entry(&self, method: &str) -> Option<&MethodEntry<T>> {
        self.entries.iter().find(|e| e.name == method)
    }

    /// Whether `method` was declared `readonly`; unknown methods are not
    /// readonly.
    pub fn is_readonly(&self, method: &str) -> bool {
        self.entry(method).is_some_and(MethodEntry::readonly)
    }

    /// Iterates the declared methods in declaration order.
    pub fn methods(&self) -> impl Iterator<Item = &MethodEntry<T>> {
        self.entries.iter()
    }

    /// Declares this table's class and methods in a [`ClassGraph`], making
    /// the method metadata visible to the static analysis and its
    /// consumers (checker, tooling, cross-backend tests).
    pub fn declare_in(&self, classes: &mut ClassGraph) {
        classes.add_class(self.class);
        for entry in &self.entries {
            classes.declare_method(self.class, entry.name, entry.readonly);
            if let Some(calls) = entry.calls {
                let refs = calls.iter().map(|call| {
                    MethodRef::parse(call).unwrap_or_else(|| {
                        panic!(
                            "method {}::{} declares malformed call {call:?} \
                             (expected \"Class::method\")",
                            self.class, entry.name
                        )
                    })
                });
                classes.declare_calls(self.class, entry.name, refs);
            }
        }
    }
}

impl<T> std::fmt::Debug for MethodTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodTable")
            .field("class", &self.class)
            .field(
                "methods",
                &self.entries.iter().map(|e| e.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Builder for [`MethodTable`].
pub struct MethodTableBuilder<T> {
    table: MethodTable<T>,
}

impl<T> MethodTableBuilder<T> {
    /// Declares an exclusive (update) method.
    #[must_use]
    pub fn method(self, name: &'static str, handler: Handler<T>) -> Self {
        self.push(name, false, None, handler)
    }

    /// Declares a `readonly` (`ro`) method.
    #[must_use]
    pub fn readonly(self, name: &'static str, handler: Handler<T>) -> Self {
        self.push(name, true, None, handler)
    }

    /// Declares an exclusive (update) method together with its complete
    /// outgoing call summary (`"Class::method"` strings; an empty slice
    /// declares "calls nothing").
    #[must_use]
    pub fn method_calls(
        self,
        name: &'static str,
        calls: &'static [&'static str],
        handler: Handler<T>,
    ) -> Self {
        self.push(name, false, Some(calls), handler)
    }

    /// Declares a `readonly` (`ro`) method together with its complete
    /// outgoing call summary.
    #[must_use]
    pub fn readonly_calls(
        self,
        name: &'static str,
        calls: &'static [&'static str],
        handler: Handler<T>,
    ) -> Self {
        self.push(name, true, Some(calls), handler)
    }

    fn push(
        mut self,
        name: &'static str,
        readonly: bool,
        calls: Option<&'static [&'static str]>,
        handler: Handler<T>,
    ) -> Self {
        debug_assert!(
            self.table.entry(name).is_none(),
            "method {name} declared twice on {}",
            self.table.class
        );
        debug_assert!(
            calls
                .unwrap_or(&[])
                .iter()
                .all(|c| MethodRef::parse(c).is_some()),
            "method {name} on {} declares a malformed call summary",
            self.table.class
        );
        self.table.entries.push(MethodEntry {
            name,
            readonly,
            calls,
            handler,
        });
        self
    }

    /// Finishes the table.
    pub fn build(self) -> MethodTable<T> {
        self.table
    }
}

/// A contextclass with a declarative method surface.
///
/// Implementing `ContextClass` (usually through [`context_class!`]) yields a
/// blanket [`ContextObject`] implementation: dispatch, `ro` classification
/// and `UnknownMethod` behaviour all come from the class's [`MethodTable`],
/// so they cannot drift apart and behave identically on every deployment
/// backend.
pub trait ContextClass: Send + Sized + 'static {
    /// The class's method table (built once, shared by all instances).
    fn table() -> &'static MethodTable<Self>;

    /// The class name of this instance.  Defaults to the table's static
    /// name; override it for classes whose name is chosen per instance
    /// (e.g. [`crate::KvContext`]).
    fn class_name(&self) -> &str {
        Self::table().class()
    }

    /// Serialises the context state for migration or checkpointing (see
    /// [`ContextObject::snapshot`]).
    fn snapshot(&self) -> Value {
        Value::Null
    }

    /// Restores the context state from a snapshot (see
    /// [`ContextObject::restore`]).
    fn restore(&mut self, state: &Value) {
        let _ = state;
    }
}

impl<T: ContextClass> ContextObject for T {
    fn class_name(&self) -> &str {
        ContextClass::class_name(self)
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match T::table().entry(method) {
            Some(entry) => (entry.handler)(self, args, inv),
            None => Err(AeonError::UnknownMethod {
                class: ContextClass::class_name(self).to_string(),
                method: method.to_string(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        T::table().is_readonly(method)
    }

    fn snapshot(&self) -> Value {
        ContextClass::snapshot(self)
    }

    fn restore(&mut self, state: &Value) {
        ContextClass::restore(self, state);
    }
}

/// Declares a contextclass: its name, its method table (with `ro` marks)
/// and, optionally, its snapshot/restore functions.
///
/// ```ignore
/// context_class! {
///     Building: "Building" {
///         method "update_time_of_day" calls ["Room::update_time_of_day"]
///             => Building::update_time_of_day,
///         ro method "count_players" calls ["Room::nr_players"]
///             => Building::count_players,
///     }
///     snapshot = Building::snapshot_state;
///     restore = Building::restore_state;
/// }
/// ```
///
/// The optional `calls [...]` clause declares the method's complete outgoing
/// call summary (`"Class::method"` literals; `calls []` declares "calls
/// nothing").  Summaries flow into the [`ClassGraph`] via
/// [`MethodTable::declare_in`], where `aeon-analyzer`'s pass pipeline checks
/// them for ownership coverage, readonly soundness, and deadlock freedom; in
/// debug builds the runtime additionally flags actual invocations not
/// covered by the declared summary.  Methods without the clause are exempt
/// from call-graph analysis.
///
/// Handlers are ordinary inherent functions with the [`Handler`] signature.
/// The macro expands to an implementation of [`ContextClass`] (and thereby
/// [`ContextObject`]), with the table built once in a
/// `std::sync::OnceLock`.
#[macro_export]
macro_rules! context_class {
    (
        $ty:ty : $class:literal { $($entries:tt)* }
        $(snapshot = $snap:path;)?
        $(restore = $restore:path;)?
    ) => {
        impl $crate::ContextClass for $ty {
            fn table() -> &'static $crate::MethodTable<Self> {
                static TABLE: ::std::sync::OnceLock<$crate::MethodTable<$ty>> =
                    ::std::sync::OnceLock::new();
                TABLE.get_or_init(|| {
                    $crate::context_class!(
                        @entries $crate::MethodTable::builder($class), $($entries)*
                    )
                    .build()
                })
            }

            $(
                fn snapshot(&self) -> $crate::macro_support::Value {
                    $snap(self)
                }
            )?

            $(
                fn restore(&mut self, state: &$crate::macro_support::Value) {
                    $restore(self, state)
                }
            )?
        }
    };
    (@entries $builder:expr, ) => { $builder };
    (@entries $builder:expr,
        ro method $name:literal calls [$($call:literal),* $(,)?] => $handler:expr, $($rest:tt)*
    ) => {
        $crate::context_class!(
            @entries $builder.readonly_calls($name, &[$($call),*], $handler), $($rest)*
        )
    };
    (@entries $builder:expr,
        method $name:literal calls [$($call:literal),* $(,)?] => $handler:expr, $($rest:tt)*
    ) => {
        $crate::context_class!(
            @entries $builder.method_calls($name, &[$($call),*], $handler), $($rest)*
        )
    };
    (@entries $builder:expr, ro method $name:literal => $handler:expr, $($rest:tt)*) => {
        $crate::context_class!(@entries $builder.readonly($name, $handler), $($rest)*)
    };
    (@entries $builder:expr, method $name:literal => $handler:expr, $($rest:tt)*) => {
        $crate::context_class!(@entries $builder.method($name, $handler), $($rest)*)
    };
}

/// Types the [`context_class!`] expansion refers to; not part of the public
/// API surface.
#[doc(hidden)]
pub mod macro_support {
    pub use aeon_types::Value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeon_types::args;

    #[derive(Default)]
    struct Probe {
        hits: i64,
    }

    impl Probe {
        fn hit(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
            self.hits += 1;
            Ok(Value::from(self.hits))
        }

        fn peek(&mut self, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
            Ok(Value::from(self.hits))
        }

        fn snapshot_state(&self) -> Value {
            Value::map([("hits", Value::from(self.hits))])
        }

        fn restore_state(&mut self, state: &Value) {
            self.hits = state.get("hits").and_then(Value::as_i64).unwrap_or(0);
        }
    }

    context_class! {
        Probe: "Probe" {
            method "hit" => Probe::hit,
            ro method "peek" calls [] => Probe::peek,
            method "chain" calls ["Probe::hit", "Other::peek"] => Probe::hit,
        }
        snapshot = Probe::snapshot_state;
        restore = Probe::restore_state;
    }

    #[test]
    fn table_declares_methods_and_ro_marks() {
        let table = Probe::table();
        assert_eq!(table.class(), "Probe");
        assert!(!table.is_readonly("hit"));
        assert!(table.is_readonly("peek"));
        assert!(!table.is_readonly("missing"));
        assert_eq!(table.methods().count(), 3);
    }

    #[test]
    fn call_summaries_flow_through_the_macro() {
        let table = Probe::table();
        assert_eq!(table.entry("hit").unwrap().calls(), None);
        assert_eq!(table.entry("peek").unwrap().calls(), Some(&[][..]));
        assert_eq!(
            table.entry("chain").unwrap().calls(),
            Some(&["Probe::hit", "Other::peek"][..])
        );
    }

    #[test]
    fn blanket_context_object_dispatches_through_the_table() {
        let runtime = crate::AeonRuntime::builder().build().unwrap();
        let probe = runtime
            .create_context(Box::new(Probe::default()), crate::Placement::Auto)
            .unwrap();
        let client = runtime.client();
        assert_eq!(
            client
                .submit_event(probe, "hit", args![])
                .unwrap()
                .wait()
                .unwrap(),
            Value::from(1i64)
        );
        assert_eq!(
            client
                .submit_readonly_event(probe, "peek", args![])
                .unwrap()
                .wait()
                .unwrap(),
            Value::from(1i64)
        );
        let err = client
            .submit_event(probe, "nope", args![])
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, AeonError::UnknownMethod { class, method }
            if class == "Probe" && method == "nope"));
        runtime.shutdown();
    }

    #[test]
    fn macro_snapshot_and_restore_are_wired() {
        let mut probe = Probe { hits: 9 };
        let snap = ContextObject::snapshot(&probe);
        probe.hits = 0;
        ContextObject::restore(&mut probe, &snap);
        assert_eq!(probe.hits, 9);
    }

    #[test]
    fn declare_in_feeds_the_class_graph_metadata() {
        let mut classes = ClassGraph::new();
        Probe::table().declare_in(&mut classes);
        assert!(classes.contains("Probe"));
        assert_eq!(classes.readonly_method("Probe", "peek"), Some(true));
        assert_eq!(classes.readonly_method("Probe", "hit"), Some(false));
        assert_eq!(classes.readonly_method("Probe", "missing"), None);
        assert_eq!(classes.methods_of("Probe").len(), 3);
        // Call summaries land in the graph as parsed MethodRefs.
        assert_eq!(classes.calls_of("Probe", "hit"), None);
        assert_eq!(classes.calls_of("Probe", "peek"), Some(&[][..]));
        assert_eq!(
            classes.calls_of("Probe", "chain"),
            Some(
                &[
                    MethodRef::new("Probe", "hit"),
                    MethodRef::new("Other", "peek")
                ][..]
            )
        );
    }
}
