//! Per-context activation locks (Algorithm 1 & 2 of the paper).
//!
//! Every context owns a [`ContextLock`], which models the paper's
//! `toActivateQueue` + `activatedSet` pair:
//!
//! * events wanting to use the context enqueue an activation request;
//! * requests are granted strictly in FIFO order (this is what gives
//!   starvation freedom), with the read/write twist that consecutive
//!   read-only requests may hold the context simultaneously;
//! * an exclusive request is granted only when the activated set is empty.
//!
//! The dominator of an event's target uses the same lock as a sequencer; it
//! is held for the whole duration of the event, which is how two events that
//! could reach shared descendants are prevented from interleaving.

use aeon_types::{AccessMode, AeonError, ContextId, EventId, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// State protected by the lock's mutex.
#[derive(Debug, Default)]
struct LockState {
    /// Events currently holding the context (the paper's `activatedSet`).
    activated: Vec<(EventId, AccessMode)>,
    /// Events waiting to be activated, in arrival order
    /// (the paper's `toActivateQueue`).
    queue: VecDeque<(EventId, AccessMode)>,
    /// Set when the hosting runtime shuts down; waiters give up.
    poisoned: bool,
}

/// The activation lock of a single context.
#[derive(Debug)]
pub struct ContextLock {
    context: ContextId,
    state: Mutex<LockState>,
    changed: Condvar,
}

impl ContextLock {
    /// Creates the lock for `context`.
    pub fn new(context: ContextId) -> Self {
        Self {
            context,
            state: Mutex::new(LockState::default()),
            changed: Condvar::new(),
        }
    }

    /// The context this lock belongs to.
    pub fn context(&self) -> ContextId {
        self.context
    }

    /// Blocks until `event` is activated on this context with `mode`.
    ///
    /// Activation is idempotent: if the event already holds the context the
    /// call returns immediately (re-entrant acquisition along a different
    /// ownership path).
    ///
    /// # Errors
    ///
    /// Returns [`AeonError::EventAborted`] when the lock is poisoned by a
    /// runtime shutdown while waiting.
    pub fn activate(&self, event: EventId, mode: AccessMode) -> Result<()> {
        let mut state = self.state.lock();
        if state.activated.iter().any(|(e, _)| *e == event) {
            return Ok(());
        }
        state.queue.push_back((event, mode));
        loop {
            if state.poisoned {
                // Remove our queue entry before giving up.
                state.queue.retain(|(e, _)| *e != event);
                return Err(AeonError::EventAborted {
                    event,
                    reason: "runtime shut down while waiting for activation".into(),
                });
            }
            // Grant from the head of the queue while compatible; strict FIFO
            // order gives starvation freedom.
            while let Some(&(head, head_mode)) = state.queue.front() {
                let compatible = head_mode.compatible_with(state.activated.iter().map(|(_, m)| m));
                if compatible {
                    state.queue.pop_front();
                    state.activated.push((head, head_mode));
                } else {
                    break;
                }
            }
            if state.activated.iter().any(|(e, _)| *e == event) {
                // Wake other waiters: several read-only events may have been
                // activated in the same pass.
                self.changed.notify_all();
                return Ok(());
            }
            self.changed.wait(&mut state);
        }
    }

    /// Releases the context for `event` (the event terminated in every
    /// context).  Releasing a context the event does not hold is a no-op.
    pub fn release(&self, event: EventId) {
        let mut state = self.state.lock();
        let before = state.activated.len();
        state.activated.retain(|(e, _)| *e != event);
        if state.activated.len() != before {
            self.changed.notify_all();
        }
    }

    /// Returns whether `event` currently holds the context.
    pub fn is_activated(&self, event: EventId) -> bool {
        self.state.lock().activated.iter().any(|(e, _)| *e == event)
    }

    /// Number of events currently holding the context.
    pub fn activated_count(&self) -> usize {
        self.state.lock().activated.len()
    }

    /// Number of events waiting for the context.
    pub fn queued_count(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Poisons the lock: all current and future waiters fail with
    /// [`AeonError::EventAborted`].  Used on runtime shutdown.
    pub fn poison(&self) {
        let mut state = self.state.lock();
        state.poisoned = true;
        self.changed.notify_all();
    }

    /// Test helper: waits until the activated set becomes empty or the
    /// timeout elapses; returns whether it emptied.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let mut state = self.state.lock();
        if state.activated.is_empty() {
            return true;
        }
        self.changed.wait_for(&mut state, timeout);
        state.activated.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    fn ev(n: u64) -> EventId {
        EventId::new(n)
    }

    #[test]
    fn exclusive_events_serialize() {
        let lock = Arc::new(ContextLock::new(ContextId::new(1)));
        lock.activate(ev(1), AccessMode::Exclusive).unwrap();
        assert!(lock.is_activated(ev(1)));
        assert_eq!(lock.activated_count(), 1);

        let lock2 = lock.clone();
        let handle = thread::spawn(move || {
            lock2.activate(ev(2), AccessMode::Exclusive).unwrap();
            lock2.release(ev(2));
        });
        // Give the second event time to queue up.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(lock.queued_count(), 1);
        assert!(!lock.is_activated(ev(2)));
        lock.release(ev(1));
        handle.join().unwrap();
        assert_eq!(lock.activated_count(), 0);
    }

    #[test]
    fn read_only_events_share() {
        let lock = ContextLock::new(ContextId::new(1));
        lock.activate(ev(1), AccessMode::ReadOnly).unwrap();
        lock.activate(ev(2), AccessMode::ReadOnly).unwrap();
        assert_eq!(lock.activated_count(), 2);
        lock.release(ev(1));
        lock.release(ev(2));
        assert_eq!(lock.activated_count(), 0);
    }

    #[test]
    fn activation_is_reentrant_per_event() {
        let lock = ContextLock::new(ContextId::new(1));
        lock.activate(ev(1), AccessMode::Exclusive).unwrap();
        lock.activate(ev(1), AccessMode::Exclusive).unwrap();
        assert_eq!(lock.activated_count(), 1);
        lock.release(ev(1));
        assert_eq!(lock.activated_count(), 0);
    }

    #[test]
    fn fifo_order_prevents_readers_from_overtaking_writers() {
        let lock = Arc::new(ContextLock::new(ContextId::new(1)));
        lock.activate(ev(1), AccessMode::ReadOnly).unwrap();

        // A writer queues first, then another reader.  The reader must NOT
        // be granted before the writer (that would starve writers).
        let l = lock.clone();
        let writer = thread::spawn(move || {
            l.activate(ev(2), AccessMode::Exclusive).unwrap();
            l.release(ev(2));
        });
        thread::sleep(Duration::from_millis(20));
        let l = lock.clone();
        let reader = thread::spawn(move || {
            l.activate(ev(3), AccessMode::ReadOnly).unwrap();
            l.release(ev(3));
        });
        thread::sleep(Duration::from_millis(20));
        // Reader 3 is behind writer 2 which is blocked on reader 1.
        assert!(!lock.is_activated(ev(3)));
        assert_eq!(lock.queued_count(), 2);
        lock.release(ev(1));
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn many_threads_one_winner_at_a_time() {
        let lock = Arc::new(ContextLock::new(ContextId::new(1)));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..16u64 {
            let lock = lock.clone();
            let concurrent = concurrent.clone();
            let max_seen = max_seen.clone();
            handles.push(thread::spawn(move || {
                lock.activate(ev(i), AccessMode::Exclusive).unwrap();
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(1));
                concurrent.fetch_sub(1, Ordering::SeqCst);
                lock.release(ev(i));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "exclusive holders never overlap"
        );
        assert_eq!(lock.activated_count(), 0);
        assert_eq!(lock.queued_count(), 0);
    }

    #[test]
    fn poison_wakes_waiters_with_error() {
        let lock = Arc::new(ContextLock::new(ContextId::new(1)));
        lock.activate(ev(1), AccessMode::Exclusive).unwrap();
        let l = lock.clone();
        let waiter = thread::spawn(move || l.activate(ev(2), AccessMode::Exclusive));
        thread::sleep(Duration::from_millis(20));
        lock.poison();
        let res = waiter.join().unwrap();
        assert!(matches!(res, Err(AeonError::EventAborted { .. })));
        // The aborted waiter left the queue.
        assert_eq!(lock.queued_count(), 0);
    }

    #[test]
    fn wait_idle_reports_emptiness() {
        let lock = ContextLock::new(ContextId::new(1));
        assert!(lock.wait_idle(Duration::from_millis(1)));
        lock.activate(ev(1), AccessMode::Exclusive).unwrap();
        assert!(!lock.wait_idle(Duration::from_millis(10)));
        lock.release(ev(1));
        assert!(lock.wait_idle(Duration::from_millis(1)));
    }
}
