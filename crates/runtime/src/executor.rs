//! The sharded worker-pool executor shared by the execution backends.
//!
//! Both the in-process runtime and the cluster nodes used to burn one OS
//! thread per unit of work (one thread per submitted event, one worker
//! thread per blocking cluster message), which collapses long before the
//! "heavy traffic from millions of users" target.  This module replaces
//! that with a fixed pool of resident workers fed by per-shard FIFO
//! injection queues:
//!
//! * **Sharding** — tasks are submitted with a key (the raw id of the
//!   target context); the key picks a shard, so work for the same context
//!   always lands in the same FIFO queue and is dequeued in submission
//!   order, while independent contexts spread over all shards and run in
//!   parallel.  Sharding is an ordering/locality affinity, *not* a
//!   correctness mechanism: strict serializability still comes from the
//!   per-context activation locks and dominator sequencing.
//! * **Resident workers** — a fixed number of threads (default: the
//!   machine's available parallelism) scan the shards starting from a
//!   per-worker home offset, so under load each worker tends to drain its
//!   own shards (cache affinity) but no queue is ever starved.
//! * **Blocking escape hatch** — a task may block mid-execution (an event
//!   waiting for a context activation, a cluster worker waiting for a
//!   remote call reply).  A monitor thread watches for the stall signature
//!   — queued work, zero idle workers, and no completions since the last
//!   tick — and spawns short-lived *spill* workers that drain the queues
//!   until they are empty and then exit.  This bounds resident threads
//!   while guaranteeing progress when every resident worker is parked on a
//!   dependency that itself needs a worker to resolve (the classic fixed
//!   pool deadlock).
//!
//! Workers run each task under `catch_unwind`, so a panicking task can
//! never kill a pool thread; panics are counted in [`ExecutorStats`].
//! Callers that need to observe the panic (e.g. to resolve an event handle
//! with a proper error) catch it closer to the application code.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unit of work accepted by the pool.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Configuration of a [`ShardedExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Number of resident worker threads.
    pub workers: usize,
    /// Number of injection queues; tasks are routed by `key % shards`.
    /// `0` means "derive from the pool size" (4 × workers), so the shard
    /// count tracks the pool unless set explicitly.
    pub shards: usize,
    /// Upper bound on concurrently live spill workers (the blocking escape
    /// hatch).  Setting this too low can reintroduce the fixed-pool
    /// deadlock under extreme blocking; the default is generous.
    pub max_spill_workers: usize,
    /// How often the monitor checks for the stall signature.
    pub stall_check_interval: Duration,
    /// Maximum number of same-key tasks a worker drains from a shard in
    /// one dequeue (per-activation event batching).  The extra tasks run
    /// back-to-back on the same worker, so a hot context amortises one
    /// wakeup/scan over up to `batch_max` events while per-key FIFO order
    /// is preserved.  `1` disables batching.
    pub batch_max: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        Self {
            workers,
            shards: 0,
            max_spill_workers: 256,
            stall_check_interval: Duration::from_millis(1),
            batch_max: 8,
        }
    }
}

impl ExecutorConfig {
    /// A configuration with `workers` resident workers and an
    /// automatically derived shard count.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// A point-in-time snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Number of resident workers.
    pub workers: usize,
    /// Number of injection shards.
    pub shards: usize,
    /// Tasks accepted by [`ShardedExecutor::submit`].
    pub submitted: u64,
    /// Tasks that finished executing (including panicked ones).
    pub completed: u64,
    /// Tasks currently sitting in the injection queues.
    pub queued: u64,
    /// Total spill workers spawned by the blocking escape hatch.
    pub spill_spawned: u64,
    /// Spill workers currently alive.
    pub spill_live: usize,
    /// Tasks that panicked (caught by the worker; the pool survived).
    pub panics: u64,
    /// Tasks that ran as a later member of a same-key batch (the first
    /// task of every dequeue is not counted, so this is the number of
    /// shard scans and worker wakeups saved by batching).
    pub batched: u64,
    /// Events served by the certified read-only fast path (recorded by the
    /// owning backend via [`ShardedExecutor::note_fast_path`]; the pool
    /// itself never increments it).
    pub fast_path: u64,
}

struct ExecutorInner {
    name: String,
    config: ExecutorConfig,
    /// Each queued task keeps its routing key so a dequeue can extract the
    /// other tasks of the same key (context) from the shard in one go.
    shards: Vec<Mutex<VecDeque<(u64, Task)>>>,
    /// Tasks queued across all shards (fast path for workers and monitor).
    queued: AtomicU64,
    /// Workers currently parked waiting for work.
    idle: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    spill_spawned: AtomicU64,
    spill_live: AtomicUsize,
    panics: AtomicU64,
    batched: AtomicU64,
    fast_path: AtomicU64,
    shutdown: AtomicBool,
    /// Sleep coordination: submitters notify under this mutex, workers
    /// re-check `queued` under it before parking, so wakeups are not lost.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Monitor coordination (separate so worker wakeups do not thrash it).
    monitor_lock: Mutex<()>,
    monitor_cv: Condvar,
}

impl ExecutorInner {
    /// Pops the oldest task of the first non-empty shard, scanning from
    /// `home` so distinct workers prefer distinct shards, and drains up to
    /// `batch_max - 1` queued tasks with the same key behind it (in their
    /// submission order, leaving other keys' relative order untouched).
    /// Per-key FIFO is preserved: the batch is exactly the key's queued
    /// prefix in this shard, executed back-to-back by one worker.
    fn next_batch(&self, home: usize) -> Option<Vec<Task>> {
        let n = self.shards.len();
        let max = self.config.batch_max.max(1);
        for i in 0..n {
            let shard = &self.shards[(home + i) % n];
            let mut queue = shard.lock();
            let Some((key, task)) = queue.pop_front() else {
                continue;
            };
            let mut batch = vec![task];
            let mut index = 0;
            while batch.len() < max && index < queue.len() {
                if queue[index].0 == key {
                    let (_, follower) = queue.remove(index).expect("index is in range");
                    batch.push(follower);
                } else {
                    index += 1;
                }
            }
            drop(queue);
            self.queued.fetch_sub(batch.len() as u64, Ordering::SeqCst);
            if batch.len() > 1 {
                self.batched
                    .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);
            }
            return Some(batch);
        }
        None
    }

    fn run_task(&self, task: Task) {
        if std::panic::catch_unwind(AssertUnwindSafe(task)).is_err() {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        self.completed.fetch_add(1, Ordering::SeqCst);
    }

    fn worker_loop(self: &Arc<Self>, home: usize) {
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.next_batch(home) {
                Some(batch) => {
                    for task in batch {
                        self.run_task(task);
                    }
                }
                None => {
                    let mut guard = self.sleep_lock.lock();
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Re-check under the sleep lock: a submitter that
                    // enqueued after our scan notifies under this lock.
                    if self.queued.load(Ordering::SeqCst) > 0 {
                        continue;
                    }
                    self.idle.fetch_add(1, Ordering::SeqCst);
                    self.sleep_cv
                        .wait_for(&mut guard, Duration::from_millis(100));
                    self.idle.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// A spill worker drains the queues and exits as soon as they are
    /// empty; it never parks.
    fn spill_loop(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.next_batch(0) {
                Some(batch) => {
                    for task in batch {
                        self.run_task(task);
                    }
                }
                None => break,
            }
        }
        self.spill_live.fetch_sub(1, Ordering::SeqCst);
    }

    /// Watches for the stall signature (queued work, nobody idle, no
    /// completions since the previous tick) and spawns spill workers.
    ///
    /// Successive spawns with no progress in between back off
    /// exponentially (1, 2, 4, … stalled ticks, capped), so ordinary
    /// blocking bursts (e.g. every resident worker inside a
    /// multi-millisecond remote call) cost a handful of spill threads
    /// rather than one per tick, while genuine dependency chains still
    /// get rescued step by step.
    fn monitor_loop(self: &Arc<Self>) {
        const MAX_BACKOFF_TICKS: u32 = 32;
        let mut last_completed = u64::MAX;
        let mut stalled_ticks = 0u32;
        let mut spawn_after = 1u32;
        loop {
            {
                let mut guard = self.monitor_lock.lock();
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                self.monitor_cv
                    .wait_for(&mut guard, self.config.stall_check_interval);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.queued.load(Ordering::SeqCst) == 0 {
                last_completed = u64::MAX;
                stalled_ticks = 0;
                spawn_after = 1;
                continue;
            }
            let completed = self.completed.load(Ordering::SeqCst);
            let stalled = self.idle.load(Ordering::SeqCst) == 0 && completed == last_completed;
            last_completed = completed;
            if !stalled {
                stalled_ticks = 0;
                spawn_after = 1;
                continue;
            }
            stalled_ticks += 1;
            if stalled_ticks >= spawn_after
                && self.spill_live.load(Ordering::SeqCst) < self.config.max_spill_workers
            {
                stalled_ticks = 0;
                spawn_after = spawn_after.saturating_mul(2).min(MAX_BACKOFF_TICKS);
                self.spill_live.fetch_add(1, Ordering::SeqCst);
                self.spill_spawned.fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(self);
                let spawned = std::thread::Builder::new()
                    .name(format!("{}-spill", self.name))
                    .spawn(move || inner.spill_loop());
                if spawned.is_err() {
                    self.spill_live.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Drops every queued task (their completion channels disconnect,
    /// resolving any waiting handles as shut down).
    fn drain_queues(&self) {
        for shard in &self.shards {
            let dropped = {
                let mut queue = shard.lock();
                std::mem::take(&mut *queue)
            };
            self.queued
                .fetch_sub(dropped.len() as u64, Ordering::SeqCst);
            drop(dropped);
        }
    }
}

impl std::fmt::Debug for ExecutorInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorInner")
            .field("name", &self.name)
            .field("workers", &self.config.workers)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// A fixed-size worker pool over sharded FIFO injection queues.
///
/// Dropping the executor shuts it down (queued tasks are dropped, resident
/// workers are joined), so an owner does not leak threads when it goes
/// away without an explicit shutdown.
#[derive(Debug)]
pub struct ShardedExecutor {
    inner: Arc<ExecutorInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ShardedExecutor {
    /// Starts a pool named `name` (thread names derive from it).
    ///
    /// A zero `workers` is promoted to one (misconfiguration should be
    /// rejected by the owning builder with a proper error); a zero
    /// `shards` derives the shard count from the pool size.
    pub fn new(name: impl Into<String>, config: ExecutorConfig) -> Self {
        let name = name.into();
        let workers = config.workers.max(1);
        let shards = if config.shards == 0 {
            workers.saturating_mul(4)
        } else {
            config.shards
        };
        let inner = Arc::new(ExecutorInner {
            name: name.clone(),
            config: ExecutorConfig {
                workers,
                shards,
                ..config
            },
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicU64::new(0),
            idle: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            spill_spawned: AtomicU64::new(0),
            spill_live: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            fast_path: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            monitor_lock: Mutex::new(()),
            monitor_cv: Condvar::new(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for worker in 0..workers {
            let inner = Arc::clone(&inner);
            // Spread worker homes across the shard space.
            let home = worker * shards / workers;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{worker}"))
                    .spawn(move || inner.worker_loop(home))
                    .expect("spawning a pool worker succeeds"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{name}-monitor"))
                    .spawn(move || inner.monitor_loop())
                    .expect("spawning the pool monitor succeeds"),
            );
        }
        Self {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Number of resident workers.
    pub fn worker_count(&self) -> usize {
        self.inner.config.workers
    }

    /// Submits a task routed by `key` (same key ⇒ same shard ⇒ FIFO
    /// dequeue order).  Tasks submitted after shutdown are dropped, which
    /// resolves any completion channel they carry as disconnected.
    pub fn submit(&self, key: u64, task: impl FnOnce() + Send + 'static) {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let shard = (key % self.inner.shards.len() as u64) as usize;
        // Count before pushing so a concurrent pop (which decrements)
        // can never observe the task ahead of its increment.
        self.inner.queued.fetch_add(1, Ordering::SeqCst);
        self.inner.shards[shard]
            .lock()
            .push_back((key, Box::new(task)));
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        // Close the race with a concurrent shutdown(): its drain may have
        // run between our entry check and the push, in which case nobody
        // will ever pop this task and its completion channel would leak
        // (hanging the waiting handle instead of disconnecting it).
        if self.inner.shutdown.load(Ordering::SeqCst) {
            self.inner.drain_queues();
            return;
        }
        // Notify under the sleep lock so a worker between "scan found
        // nothing" and "park" re-checks and cannot miss this task.
        let _guard = self.inner.sleep_lock.lock();
        self.inner.sleep_cv.notify_one();
    }

    /// Queued (not yet dequeued) task counts grouped by routing key.
    ///
    /// Control-plane only: this locks each shard in turn and walks its
    /// queue, so metrics reporters can attribute depth to the entity the
    /// key identifies (the runtime keys by context id, letting
    /// `server_metrics` report the *real* backlog behind each server
    /// instead of an even split).  The result is a snapshot — tasks may be
    /// dequeued while later shards are scanned.
    pub fn queued_by_key(&self) -> std::collections::HashMap<u64, u64> {
        let mut counts = std::collections::HashMap::new();
        for shard in &self.inner.shards {
            let queue = shard.lock();
            for (key, _) in queue.iter() {
                *counts.entry(*key).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Current counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            workers: self.inner.config.workers,
            shards: self.inner.shards.len(),
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::SeqCst),
            queued: self.inner.queued.load(Ordering::SeqCst),
            spill_spawned: self.inner.spill_spawned.load(Ordering::Relaxed),
            spill_live: self.inner.spill_live.load(Ordering::SeqCst),
            panics: self.inner.panics.load(Ordering::Relaxed),
            batched: self.inner.batched.load(Ordering::Relaxed),
            fast_path: self.inner.fast_path.load(Ordering::Relaxed),
        }
    }

    /// Records one event served by the certified read-only fast path.  The
    /// pool only carries the counter (so fast-path observability travels
    /// with the rest of the executor stats); the owning backend decides
    /// what qualifies.
    pub fn note_fast_path(&self) {
        self.inner.fast_path.fetch_add(1, Ordering::Relaxed);
    }

    /// Stops the pool: queued tasks are dropped, resident workers and the
    /// monitor are joined; live spill workers exit on their own as soon as
    /// they observe the flag.  Tasks already executing run to completion
    /// first, so callers that poison blocking primitives should do so
    /// *before* shutting the pool down.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drop queued tasks before waking workers so nothing new starts.
        self.inner.drain_queues();
        {
            let _guard = self.inner.sleep_lock.lock();
            self.inner.sleep_cv.notify_all();
        }
        {
            let _guard = self.inner.monitor_lock.lock();
            self.inner.monitor_cv.notify_all();
        }
        let threads = {
            let mut threads = self.threads.lock();
            std::mem::take(&mut *threads)
        };
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::mpsc;
    use std::time::Instant;

    fn small_pool(workers: usize) -> ShardedExecutor {
        ShardedExecutor::new("test-pool", ExecutorConfig::with_workers(workers))
    }

    #[test]
    fn executes_submitted_tasks() {
        let pool = small_pool(2);
        let counter = Arc::new(Counter::new(0));
        for key in 0..100u64 {
            let counter = Arc::clone(&counter);
            pool.submit(key, move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while counter.load(Ordering::SeqCst) < 100 {
            assert!(Instant::now() < deadline, "tasks did not all run");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.queued, 0);
        pool.shutdown();
    }

    #[test]
    fn same_key_tasks_dequeue_in_submission_order() {
        let pool = small_pool(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(Counter::new(0));
        // One slow task on the shard first, then ordered followers: the
        // followers must be dequeued in submission order.
        for i in 0..50u64 {
            let order = Arc::clone(&order);
            let gate = Arc::clone(&gate);
            pool.submit(7, move || {
                while gate.load(Ordering::SeqCst) != i {
                    std::thread::yield_now();
                }
                order.lock().push(i);
                gate.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while gate.load(Ordering::SeqCst) < 50 {
            assert!(Instant::now() < deadline, "ordered tasks stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(*order.lock(), (0..50).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn spill_workers_rescue_blocked_pool() {
        // Pool of 1; the first task blocks until a second task (which
        // needs the escape hatch to run) unblocks it.
        let pool = small_pool(1);
        let (tx, rx) = mpsc::channel::<()>();
        pool.submit(0, move || {
            rx.recv_timeout(Duration::from_secs(10))
                .expect("the rescue task must run despite the blocked pool");
        });
        std::thread::sleep(Duration::from_millis(20));
        pool.submit(1, move || {
            let _ = tx.send(());
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().completed < 2 {
            assert!(Instant::now() < deadline, "escape hatch never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.stats().spill_spawned >= 1);
        pool.shutdown();
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = small_pool(1);
        pool.submit(0, || panic!("boom"));
        let done = Arc::new(Counter::new(0));
        let d = Arc::clone(&done);
        pool.submit(0, move || {
            d.store(1, Ordering::SeqCst);
        });
        // Wait for *both* tasks to complete (the second may run on a spill
        // worker while the panic backtrace is still being printed).
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().completed < 2 {
            assert!(Instant::now() < deadline, "worker died after a panic");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().panics, 1);
        // The pool keeps serving tasks after the panic.
        let d = Arc::clone(&done);
        pool.submit(3, move || {
            d.store(2, Ordering::SeqCst);
        });
        while pool.stats().completed < 3 {
            assert!(Instant::now() < deadline, "pool dead after a panic");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
        pool.shutdown();
    }

    #[test]
    fn same_key_tasks_batch_under_one_dequeue() {
        // One worker, monitor effectively off: block the worker on shard 0,
        // queue interleaved tasks of two keys that share shard 1, then
        // release.  The worker must drain each key's run as one batch (all
        // key-1 tasks before any key-5 task despite interleaved submission)
        // and count the saved dequeues.
        let pool = ShardedExecutor::new(
            "test-pool",
            ExecutorConfig {
                workers: 1,
                stall_check_interval: Duration::from_secs(300),
                ..ExecutorConfig::default()
            },
        );
        assert_eq!(pool.stats().shards, 4);
        let (tx, rx) = mpsc::channel::<()>();
        pool.submit(0, move || {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        });
        std::thread::sleep(Duration::from_millis(20));
        let order = Arc::new(Mutex::new(Vec::new()));
        for key in [1u64, 5, 1, 5, 1] {
            let order = Arc::clone(&order);
            pool.submit(key, move || order.lock().push(key));
        }
        tx.send(()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().completed < 6 {
            assert!(Instant::now() < deadline, "batched tasks stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(*order.lock(), vec![1, 1, 1, 5, 5]);
        // Two follower tasks rode the key-1 batch, one the key-5 batch.
        assert_eq!(pool.stats().batched, 3);
        pool.shutdown();
    }

    #[test]
    fn batch_max_one_disables_batching() {
        let pool = ShardedExecutor::new(
            "test-pool",
            ExecutorConfig {
                workers: 1,
                batch_max: 1,
                stall_check_interval: Duration::from_secs(300),
                ..ExecutorConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel::<()>();
        pool.submit(0, move || {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        });
        std::thread::sleep(Duration::from_millis(20));
        let counter = Arc::new(Counter::new(0));
        for _ in 0..5 {
            let counter = Arc::clone(&counter);
            pool.submit(1, move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        tx.send(()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().completed < 6 {
            assert!(Instant::now() < deadline, "tasks stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.stats().batched, 0);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drops_queued_tasks_and_joins() {
        // One worker and a monitor that never fires during the test, so
        // the queued follower cannot be rescued by a spill worker: it
        // must be dropped by shutdown's drain.
        let pool = ShardedExecutor::new(
            "test-pool",
            ExecutorConfig {
                workers: 1,
                stall_check_interval: Duration::from_secs(300),
                ..ExecutorConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel::<()>();
        pool.submit(0, move || {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        });
        std::thread::sleep(Duration::from_millis(20));
        // Queued behind the blocked worker on the same shard.
        let ran = Arc::new(Counter::new(0));
        let r = Arc::clone(&ran);
        pool.submit(0, move || {
            r.store(1, Ordering::SeqCst);
        });
        assert_eq!(pool.stats().queued, 1);
        // Shut down from another thread: the drain drops the follower
        // immediately, the join then waits for the blocked task.
        let pool = Arc::new(pool);
        let p = Arc::clone(&pool);
        let shutdown = std::thread::spawn(move || p.shutdown());
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.stats().queued != 0 {
            assert!(Instant::now() < deadline, "shutdown never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "dropped task ran");
        drop(tx);
        shutdown.join().unwrap();
        // The follower was dropped, not executed; submissions after
        // shutdown are dropped too.
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(pool.stats().completed, 1);
        let r = Arc::clone(&ran);
        pool.submit(0, move || {
            r.store(2, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(pool.stats().queued, 0);
    }
}
