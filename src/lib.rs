//! Root package of the AEON reproduction workspace.
//!
//! It only hosts the workspace-level examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library itself lives in the
//! [`aeon`] facade crate and the `aeon-*` sub-crates.

pub use aeon;
pub use aeon_apps as apps;
