//! `aeon-lint` — static analysis of AEON contextclass graphs from the
//! command line.
//!
//! Runs the `aeon-analyzer` pass pipeline (AEON001..AEON007) over the
//! workspace's built-in application graphs and/or JSON-encoded `ClassGraph`
//! documents, and exits nonzero when any error-severity diagnostic is
//! found — the CI gate that keeps every shipped graph deployable.
//!
//! ```text
//! aeon-lint [--format text|json] [TARGET...]
//!
//! TARGET   a built-in graph (game, tpcc, bank, kv, collections),
//!          "builtins" for all of them, or a path to a ClassGraph JSON
//!          document.  Default: builtins.
//! ```
//!
//! Exit status: 0 when every target is free of error diagnostics, 1 when
//! any error diagnostic was reported, 2 on usage or input errors.

use aeon_analyzer::{analyze, json, AnalysisReport};
use aeon_ownership::ClassGraph;
use std::process::ExitCode;

const BUILTINS: [&str; 5] = ["game", "tpcc", "bank", "kv", "collections"];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn builtin_graph(name: &str) -> Option<ClassGraph> {
    match name {
        "game" => Some(aeon_apps::game::game_class_graph()),
        "tpcc" => Some(aeon_apps::tpcc::tpcc_class_graph()),
        "bank" => Some(aeon_apps::bank::bank_class_graph()),
        "kv" => Some(aeon_apps::kv_class_graph()),
        "collections" => Some(aeon_apps::collections::collections_class_graph()),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: aeon-lint [--format text|json] [TARGET...]\n\
         \n\
         TARGET is a built-in graph ({}), \"builtins\" for all of them,\n\
         or a path to a ClassGraph JSON document.  Default: builtins.",
        BUILTINS.join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "aeon-lint: --format expects text or json, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return usage();
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => targets.push(arg),
        }
    }
    if targets.is_empty() {
        targets.push("builtins".to_string());
    }
    // Expand "builtins" and load every target before linting, so a typo'd
    // target fails fast with exit 2 instead of half a run.
    let mut graphs: Vec<(String, ClassGraph)> = Vec::new();
    for target in targets {
        if target == "builtins" {
            for name in BUILTINS {
                graphs.push((name.to_string(), builtin_graph(name).expect("builtin")));
            }
        } else if let Some(classes) = builtin_graph(&target) {
            graphs.push((target, classes));
        } else {
            let text = match std::fs::read_to_string(&target) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("aeon-lint: cannot read {target}: {e}");
                    return ExitCode::from(2);
                }
            };
            match json::from_json(&text) {
                Ok(classes) => graphs.push((target, classes)),
                Err(e) => {
                    eprintln!("aeon-lint: cannot parse {target}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let reports: Vec<(String, AnalysisReport)> = graphs
        .iter()
        .map(|(name, classes)| (name.clone(), analyze(classes)))
        .collect();
    let failed = reports.iter().any(|(_, r)| r.has_errors());

    match format {
        Format::Text => {
            for (name, report) in &reports {
                if report.is_clean() {
                    println!("{name}: clean");
                } else {
                    println!(
                        "{name}: {} error(s), {} warning(s)",
                        report.errors().count(),
                        report.warnings().count()
                    );
                    for line in report.render_text().lines() {
                        println!("  {line}");
                    }
                }
            }
        }
        Format::Json => {
            let mut out = String::from("{");
            for (i, (name, report)) in reports.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{}:{}",
                    json::json_string(name),
                    report.render_json()
                ));
            }
            out.push('}');
            println!("{out}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
