//! `aeond` — run an AEON deployment as a long-lived service.
//!
//! Loads a TOML [`ServiceConfig`](aeon::config::ServiceConfig), builds the
//! configured deployment (`runtime`, `cluster`, or `sim`), and exposes a
//! minimal HTTP/1.0 admin surface for operators:
//!
//! - `GET /healthz` — liveness: the process is up and serving.
//! - `GET /readyz`  — readiness: every configured server reports metrics.
//! - `GET /metrics` — Prometheus text exposition (per-server load, event
//!   latency histogram, executor pool counters, network counters).  Served
//!   from a cache refreshed by a background timer so scrapes never block
//!   on a cluster round trip.
//! - `GET|POST /drain` — graceful drain: migrate every context off all but
//!   the first server via the elasticity manager, shut the deployment
//!   down, answer `200`, and exit 0.
//!
//! The bound admin address is printed on stdout at startup (useful with
//! `listen = "127.0.0.1:0"`, where the OS picks the port).  An optional
//! `[workload]` section drives built-in KV traffic so smoke tests observe
//! nonzero counters without an external client.

use aeon::config::{ServiceConfig, WorkloadConfig};
use aeon::prelude::*;
use aeon::runtime::ExecutorStats;
use aeon::types::promtext::{render_network_stats, render_server_metrics, PromWriter};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::exit;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: aeond --config <path>");
    exit(2);
}

fn main() {
    let mut config_path = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--config" => config_path = Some(argv.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(config_path) = config_path else {
        usage();
    };
    let config = match ServiceConfig::load(std::path::Path::new(&config_path)) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("aeond: {e}");
            exit(1);
        }
    };

    let deployment = match aeon::deploy_shared(config.deployment.clone()) {
        Ok(deployment) => deployment,
        Err(e) => {
            eprintln!("aeond: deploy failed: {e}");
            exit(1);
        }
    };
    // Drain migrates contexts between servers, which on the cluster backend
    // rebuilds them from snapshots via the class factory registry.
    deployment.register_class_factory(
        "Item",
        Arc::new(|state| {
            let mut item = KvContext::new("Item");
            ContextObject::restore(&mut item, state);
            Box::new(item) as Box<dyn ContextObject>
        }),
    );
    let manager = EManager::new(deployment.clone(), InMemoryStore::new());

    let listener = match TcpListener::bind(config.admin.listen) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("aeond: bind {}: {e}", config.admin.listen);
            exit(1);
        }
    };
    let admin_addr = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("aeond: admin listening on {admin_addr}");
    std::io::stdout().flush().ok();

    let cache = Arc::new(Mutex::new(render_exposition(deployment.as_ref())));
    spawn_push_timer(
        deployment.clone(),
        cache.clone(),
        config.admin.push_interval,
    );
    if let Some(workload) = config.workload {
        spawn_workload(deployment.clone(), workload);
    }

    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        if let Some(path) = read_request_path(&stream) {
            serve(&stream, &path, deployment.as_ref(), &manager, &cache);
        }
    }
}

/// Background timer: snapshot the deployment's metrics into the exposition
/// cache every `interval`, so `/metrics` answers from memory.
fn spawn_push_timer(
    deployment: Arc<dyn Deployment>,
    cache: Arc<Mutex<String>>,
    interval: Duration,
) {
    std::thread::Builder::new()
        .name("aeond-metrics-push".into())
        .spawn(move || loop {
            std::thread::sleep(interval);
            let body = render_exposition(deployment.as_ref());
            *cache.lock().expect("metrics cache poisoned") = body;
        })
        .expect("spawn metrics-push thread");
}

/// Built-in traffic source: `contexts` KV contexts each receiving `events`
/// increment events from a background thread.
fn spawn_workload(deployment: Arc<dyn Deployment>, workload: WorkloadConfig) {
    std::thread::Builder::new()
        .name("aeond-workload".into())
        .spawn(move || {
            let mut contexts = Vec::with_capacity(workload.contexts);
            for _ in 0..workload.contexts {
                match deployment.create_context(Box::new(KvContext::new("Item")), Placement::Auto) {
                    Ok(ctx) => contexts.push(ctx),
                    Err(e) => {
                        eprintln!("aeond: workload create_context: {e}");
                        return;
                    }
                }
            }
            let session = deployment.session();
            for round in 0..workload.events {
                for &ctx in &contexts {
                    if let Err(e) = session.call(ctx, "incr", args!["hits", 1]) {
                        eprintln!("aeond: workload event {round}: {e}");
                        return;
                    }
                }
            }
        })
        .expect("spawn workload thread");
}

/// Renders the full Prometheus exposition for the deployment.
fn render_exposition(deployment: &dyn Deployment) -> String {
    let mut w = PromWriter::new();
    w.family("aeon_up", "Whether the aeond service is up.", "gauge");
    w.sample("aeon_up", &[], 1.0);
    w.family(
        "aeon_servers",
        "Number of servers in the deployment.",
        "gauge",
    );
    w.sample("aeon_servers", &[], deployment.servers().len() as f64);
    w.family("aeon_contexts_total", "Number of live contexts.", "gauge");
    w.sample(
        "aeon_contexts_total",
        &[],
        deployment.context_count() as f64,
    );
    render_server_metrics(&mut w, &deployment.server_metrics());
    if let Some(stats) = deployment.executor_stats() {
        render_executor_stats(&mut w, &stats);
    }
    if let Some(net) = deployment.network_stats() {
        render_network_stats(&mut w, &net);
    }
    w.finish()
}

/// Executor pool counters.  Lives here rather than in `aeon-types` because
/// [`ExecutorStats`] belongs to `aeon-runtime`, which `aeon-types` cannot
/// depend on.
fn render_executor_stats(w: &mut PromWriter, stats: &ExecutorStats) {
    let gauges: [(&str, &str, u64); 4] = [
        (
            "aeon_executor_workers",
            "Resident pool worker threads.",
            stats.workers as u64,
        ),
        (
            "aeon_executor_shards",
            "Executor queue shards.",
            stats.shards as u64,
        ),
        (
            "aeon_executor_queued",
            "Tasks currently queued.",
            stats.queued,
        ),
        (
            "aeon_executor_spill_live",
            "Live spill worker threads.",
            stats.spill_live as u64,
        ),
    ];
    for (name, help, value) in gauges {
        w.family(name, help, "gauge");
        w.sample(name, &[], value as f64);
    }
    let counters: [(&str, &str, u64); 6] = [
        (
            "aeon_executor_submitted_total",
            "Tasks submitted to the pool.",
            stats.submitted,
        ),
        (
            "aeon_executor_completed_total",
            "Tasks completed by the pool.",
            stats.completed,
        ),
        (
            "aeon_executor_spill_spawned_total",
            "Spill workers spawned.",
            stats.spill_spawned,
        ),
        (
            "aeon_executor_panics_total",
            "Tasks that panicked.",
            stats.panics,
        ),
        (
            "aeon_executor_batched_total",
            "Events coalesced into batches.",
            stats.batched,
        ),
        (
            "aeon_executor_fast_path_total",
            "Certified read-only fast-path events.",
            stats.fast_path,
        ),
    ];
    for (name, help, value) in counters {
        w.family(name, help, "counter");
        w.sample(name, &[], value as f64);
    }
}

/// Reads the HTTP/1.0 request line and discards headers; returns the path.
fn read_request_path(stream: &TcpStream) -> Option<String> {
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?.to_string();
    if method != "GET" && method != "POST" {
        return None;
    }
    // Drain headers so the client sees a clean close.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    Some(path)
}

fn respond(mut stream: &TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn serve(
    stream: &TcpStream,
    path: &str,
    deployment: &dyn Deployment,
    manager: &EManager,
    cache: &Mutex<String>,
) {
    match path {
        "/healthz" => respond(stream, "200 OK", "text/plain", "ok\n"),
        "/readyz" => {
            // Live probe: every configured server must answer metrics
            // collection.  A partitioned or crashed server fails this.
            let servers = deployment.servers().len();
            let reporting = deployment.server_metrics().len();
            if servers > 0 && reporting == servers {
                respond(stream, "200 OK", "text/plain", "ready\n");
            } else {
                let body = format!("not ready: {reporting}/{servers} servers reporting\n");
                respond(stream, "503 Service Unavailable", "text/plain", &body);
            }
        }
        "/metrics" => {
            let body = cache.lock().expect("metrics cache poisoned").clone();
            respond(stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        "/drain" => {
            let servers = deployment.servers();
            for &server in servers.iter().skip(1) {
                if let Err(e) = manager.drain_server(server) {
                    let body = format!("drain {server} failed: {e}\n");
                    respond(stream, "500 Internal Server Error", "text/plain", &body);
                    return;
                }
            }
            deployment.shutdown();
            respond(stream, "200 OK", "text/plain", "drained\n");
            exit(0);
        }
        _ => respond(stream, "404 Not Found", "text/plain", "not found\n"),
    }
}
