//! `aeon-node` — one AEON cluster server as an OS process.
//!
//! A distributed AEON deployment is a gateway process (the application,
//! holding a [`aeon::cluster::Cluster`] built with
//! `ClusterTransport::TcpMesh`) plus N `aeon-node` processes, one per
//! server.  Each node binds a TCP listener, connects to the gateway and its
//! peer nodes, and then runs the ordinary server machinery — the receive
//! loop, the sharded worker pool, and the migration/snapshot protocol — until
//! the gateway shuts the cluster down.
//!
//! ```text
//! aeon-node --id 0 --listen 127.0.0.1:7100 --gateway 127.0.0.1:7090 \
//!           --peer 1=127.0.0.1:7101 --peer 2=127.0.0.1:7102
//! ```
//!
//! Every node must know the addresses of all peers it may exchange
//! node-to-node traffic with (remote calls, migration state transfer); the
//! gateway address is where directory RPCs (`DirReq`/`DirAck`) and event
//! acknowledgements go.
//!
//! The binary registers contextclass factories for the classes shipped with
//! the workspace (key-value contexts, the bank demo, the game demo) so the
//! gateway can host, migrate, and restore those contexts here.  Embedders
//! with their own classes write their own `main` against
//! [`aeon::cluster::run_node`].

use aeon::cluster::{run_node, Directory, NodeProcessConfig};
use aeon::runtime::{ContextObject, ExecutorConfig, KvContext};
use aeon::types::{ServerId, Value};
use aeon_apps::bank::{Account, Bank, Branch};
use aeon_apps::game::{Building, Player, Room};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: aeon-node --id <n> --listen <addr> --gateway <addr> \
         [--peer <id>=<addr>]... [--workers <n>] [--kv-class <name>]..."
    );
    exit(2);
}

struct Args {
    id: Option<ServerId>,
    listen: Option<SocketAddr>,
    gateway: Option<SocketAddr>,
    peers: BTreeMap<ServerId, SocketAddr>,
    workers: Option<usize>,
    kv_classes: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        id: None,
        listen: None,
        gateway: None,
        peers: BTreeMap::new(),
        workers: None,
        kv_classes: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => {
                let raw: u32 = value().parse().unwrap_or_else(|_| usage());
                args.id = Some(ServerId::new(raw));
            }
            "--listen" => args.listen = Some(value().parse().unwrap_or_else(|_| usage())),
            "--gateway" => args.gateway = Some(value().parse().unwrap_or_else(|_| usage())),
            "--peer" => {
                let spec = value();
                let Some((id, addr)) = spec.split_once('=') else {
                    usage();
                };
                let id: u32 = id.parse().unwrap_or_else(|_| usage());
                let addr: SocketAddr = addr.parse().unwrap_or_else(|_| usage());
                args.peers.insert(ServerId::new(id), addr);
            }
            "--workers" => args.workers = Some(value().parse().unwrap_or_else(|_| usage())),
            "--kv-class" => args.kv_classes.push(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// Factories for the contextclasses shipped with the workspace, plus a
/// generic key-value factory for every class named with `--kv-class`.
fn register_builtin_factories(directory: &Directory, kv_classes: &[String]) {
    for class in ["Item", "Counter"]
        .into_iter()
        .map(str::to_string)
        .chain(kv_classes.iter().cloned())
    {
        let name = class.clone();
        directory.register_factory(
            class,
            Arc::new(move |state: &Value| {
                let mut kv = KvContext::new(name.clone());
                ContextObject::restore(&mut kv, state);
                Box::new(kv) as Box<dyn ContextObject>
            }),
        );
    }
    directory.register_factory(
        "Account",
        Arc::new(|state: &Value| {
            let mut account = Account::default();
            ContextObject::restore(&mut account, state);
            Box::new(account) as Box<dyn ContextObject>
        }),
    );
    directory.register_factory(
        "Branch",
        Arc::new(|_: &Value| Box::new(Branch) as Box<dyn ContextObject>),
    );
    directory.register_factory(
        "Bank",
        Arc::new(|_: &Value| Box::new(Bank) as Box<dyn ContextObject>),
    );
    directory.register_factory(
        "Building",
        Arc::new(|_: &Value| Box::new(Building) as Box<dyn ContextObject>),
    );
    directory.register_factory(
        "Room",
        Arc::new(|state: &Value| {
            let mut room = Room::default();
            ContextObject::restore(&mut room, state);
            Box::new(room) as Box<dyn ContextObject>
        }),
    );
    directory.register_factory(
        "Player",
        Arc::new(|state: &Value| {
            let mut player = Player::default();
            ContextObject::restore(&mut player, state);
            Box::new(player) as Box<dyn ContextObject>
        }),
    );
}

fn main() {
    let args = parse_args();
    let (Some(id), Some(listen), Some(gateway)) = (args.id, args.listen, args.gateway) else {
        usage();
    };
    let mut executor = ExecutorConfig::default();
    if let Some(workers) = args.workers {
        executor.workers = workers;
    }
    let config = NodeProcessConfig {
        id,
        listen,
        gateway,
        peers: args.peers,
        executor,
    };
    eprintln!("aeon-node {id}: listening on {listen}, gateway {gateway}");
    match run_node(config, |directory| {
        register_builtin_factories(directory, &args.kv_classes);
    }) {
        Ok(()) => eprintln!("aeon-node {id}: shut down cleanly"),
        Err(err) => {
            eprintln!("aeon-node {id}: {err}");
            exit(1);
        }
    }
}
