//! One contextclass program, three execution substrates.
//!
//! The paper's central promise is that a contextclass program runs
//! unchanged on one server or fifty.  This example makes it concrete: the
//! same game driver (`aeon_apps::game::deploy_game`, written once against
//! `&dyn Deployment`) runs on
//!
//! * the in-process concurrent runtime,
//! * the distributed message-passing cluster, and
//! * the deterministic virtual-time simulator,
//!
//! producing identical results on each.  The backends themselves are built
//! by the config-driven `aeon::deploy` entry point — the program never
//! names a concrete backend type.
//!
//! Run with `cargo run --example unified_deployment`.

use aeon::prelude::*;
use aeon_apps::game::{deploy_game, game_class_graph};

/// Deploys the game and moves gold around; identical on every backend.
fn play(deployment: &dyn Deployment) -> Result<Value> {
    let world = deploy_game(deployment, 2, 3)?;
    let session = deployment.session();
    for players in &world.players {
        for player in players {
            session.call(*player, "get_gold", args![25])?;
        }
    }
    let mut total = 0i64;
    for treasure in &world.treasures {
        total += session
            .call_readonly(*treasure, "get", args!["gold"])?
            .as_i64()
            .unwrap_or(0);
    }
    session.call_readonly(world.building, "count_players", args![])?;
    Ok(Value::from(total))
}

fn main() -> Result<()> {
    let mut results = Vec::new();
    for backend in Backend::ALL {
        let deployment = aeon::deploy(
            DeployConfig::new(backend)
                .servers(3)
                .class_graph(game_class_graph()),
        )?;
        let total = play(deployment.as_ref())?;
        println!(
            "{:>8}: total treasure gold = {total}",
            deployment.backend_name()
        );
        results.push(total);
        deployment.shutdown();
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "all backends agree: {results:?}"
    );
    println!("all three backends produced identical results");
    Ok(())
}
