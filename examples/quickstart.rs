//! Quickstart: create contexts on a small deployment and issue
//! strictly-serializable events through the unified `Deployment`/`Session`
//! API.
//!
//! Run with `cargo run --example quickstart`.

use aeon::prelude::*;

fn main() -> Result<()> {
    // Two logical servers.  Any backend works here: `Cluster::builder()`
    // or `SimDeployment::builder()` deploy the same program distributed or
    // simulated (see the `unified_deployment` example).
    let runtime = AeonRuntime::builder().servers(2).build()?;
    let deployment: &dyn Deployment = &runtime;

    // A generic key/value contextclass shipped with the runtime.
    let account =
        deployment.create_context(Box::new(KvContext::new("Account")), Placement::Auto)?;

    let session = deployment.session();
    // Exclusive (update) events.
    session.call(account, "set", args!["owner", "alice"])?;
    session.call(account, "incr", args!["balance", 100])?;
    session.call(account, "incr", args!["balance", -30])?;
    // A read-only event (may run concurrently with other read-only events).
    let balance = session.call_readonly(account, "get", args!["balance"])?;
    println!("alice's balance: {balance}");
    assert_eq!(balance, Value::from(70i64));

    // Asynchronous completion handles are also available.
    let handle = session.submit_event(account, "incr", args!["balance", 5])?;
    println!(
        "event {} finished with {:?}",
        handle.event_id(),
        handle.wait()?
    );

    println!("events completed: {}", runtime.stats().events_completed());
    deployment.shutdown();
    Ok(())
}
