//! Quickstart: create contexts on a small deployment and issue
//! strictly-serializable events through the unified `Deployment`/`Session`
//! API.
//!
//! Run with `cargo run --example quickstart`.

use aeon::prelude::*;

fn main() -> Result<()> {
    // Two logical servers on the in-process runtime.  The backend is just
    // configuration: `DeployConfig::cluster()` or `DeployConfig::sim()`
    // deploy the same program distributed or simulated (see the
    // `unified_deployment` example).
    let deployment = aeon::deploy(DeployConfig::runtime().servers(2))?;

    // A generic key/value contextclass shipped with the runtime.
    let account =
        deployment.create_context(Box::new(KvContext::new("Account")), Placement::Auto)?;

    let session = deployment.session();
    // Exclusive (update) events.
    session.call(account, "set", args!["owner", "alice"])?;
    session.call(account, "incr", args!["balance", 100])?;
    session.call(account, "incr", args!["balance", -30])?;
    // A read-only event (may run concurrently with other read-only events).
    let balance = session.call_readonly(account, "get", args!["balance"])?;
    println!("alice's balance: {balance}");
    assert_eq!(balance, Value::from(70i64));

    // Asynchronous completion handles are also available.
    let handle = session.submit_event(account, "incr", args!["balance", 5])?;
    println!(
        "event {} finished with {:?}",
        handle.event_id(),
        handle.wait()?
    );

    println!(
        "{} contexts deployed on {} servers ({})",
        deployment.context_count(),
        deployment.servers().len(),
        deployment.backend_name()
    );
    deployment.shutdown();
    Ok(())
}
