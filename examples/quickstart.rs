//! Quickstart: define a contextclass, create contexts on a small cluster and
//! issue strictly-serializable events.
//!
//! Run with `cargo run --example quickstart`.

use aeon::prelude::*;

fn main() -> Result<()> {
    // Two logical servers.
    let runtime = AeonRuntime::builder().servers(2).build()?;

    // A generic key/value contextclass shipped with the runtime.
    let account = runtime.create_context(Box::new(KvContext::new("Account")), Placement::Auto)?;

    let client = runtime.client();
    // Exclusive (update) events.
    client.call(account, "set", args!["owner", "alice"])?;
    client.call(account, "incr", args!["balance", 100])?;
    client.call(account, "incr", args!["balance", -30])?;
    // A read-only event (may run concurrently with other read-only events).
    let balance = client.call_readonly(account, "get", args!["balance"])?;
    println!("alice's balance: {balance}");
    assert_eq!(balance, Value::from(70i64));

    // Asynchronous completion handles are also available.
    let handle = client.submit_event(account, "incr", args!["balance", 5])?;
    println!("event {} finished with {:?}", handle.event_id(), handle.wait()?);

    println!("events completed: {}", runtime.stats().events_completed());
    runtime.shutdown();
    Ok(())
}
