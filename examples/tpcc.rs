//! A scaled-down TPC-C database on the real runtime: concurrent Payment and
//! New-Order transactions while the TPC-C consistency condition
//! (W_YTD == Σ D_YTD) holds at every point.
//!
//! Run with `cargo run --example tpcc`.

use aeon::prelude::*;
use aeon_apps::tpcc::{deploy_tpcc, run_new_order, run_payment, tpcc_class_graph};

fn main() -> Result<()> {
    let runtime = AeonRuntime::builder()
        .servers(4)
        .class_graph(tpcc_class_graph())
        .build()?;
    let world = deploy_tpcc(&runtime, 4, 10)?;
    let client = runtime.client();

    let mut expected = 0i64;
    for i in 0..200 {
        let district = i % world.districts.len();
        let customer = i % 10;
        run_payment(&client, &world, district, customer, 7)?;
        expected += 7;
        if i % 2 == 0 {
            run_new_order(&client, &world, district, customer, i as i64)?;
        }
    }

    let w_ytd = client.call_readonly(world.warehouse, "ytd", args![])?;
    let mut d_sum = 0i64;
    for district in &world.districts {
        d_sum += client
            .call_readonly(*district, "ytd", args![])?
            .as_i64()
            .unwrap_or(0);
    }
    println!("W_YTD = {w_ytd}, sum of D_YTD = {d_sum}");
    assert_eq!(w_ytd, Value::from(expected));
    assert_eq!(d_sum, expected);
    println!("TPC-C consistency condition holds after 200 concurrent transactions");
    runtime.shutdown();
    Ok(())
}
