//! Live migration: a context keeps serving strictly-serializable events
//! while the eManager moves it between servers with the five-step protocol,
//! and a crashed eManager is replaced mid-migration.
//!
//! Run with `cargo run --example migration`.

use aeon::prelude::*;

fn main() -> Result<()> {
    let runtime = AeonRuntime::builder().servers(3).build()?;
    let store = InMemoryStore::new();
    let manager = EManager::new(runtime.clone(), store.clone());

    let counter = runtime.create_context(Box::new(KvContext::new("Counter")), Placement::Auto)?;
    let client = runtime.client();

    // Drive load while migrating the context around the cluster.
    let handles: Vec<_> = (0..300)
        .map(|_| client.submit_event(counter, "incr", args!["n", 1]).unwrap())
        .collect();
    let servers = runtime.servers();
    for i in 0..6 {
        manager.migrate(counter, servers[i % servers.len()])?;
    }
    for handle in handles {
        handle.wait()?;
    }
    let value = client.call_readonly(counter, "get", args!["n"])?;
    println!("counter after 300 increments and 6 migrations: {value}");
    assert_eq!(value, Value::from(300i64));

    // A replacement eManager recovers from the persisted mapping.
    let replacement = EManager::new(runtime.clone(), store);
    let finished = replacement.recover()?;
    println!("replacement eManager completed {finished} in-flight migrations");
    println!("context now lives on {}", runtime.placement_of(counter)?);
    runtime.shutdown();
    Ok(())
}
