//! Live migration: a context keeps serving strictly-serializable events
//! while the eManager moves it between servers with the five-step protocol,
//! and a crashed eManager is replaced mid-migration.
//!
//! Run with `cargo run --example migration`.

use aeon::prelude::*;

fn main() -> Result<()> {
    let deployment = aeon::deploy_shared(DeployConfig::runtime().servers(3))?;
    let store = InMemoryStore::new();
    let manager = EManager::new(deployment.clone(), store.clone());

    let counter =
        deployment.create_context(Box::new(KvContext::new("Counter")), Placement::Auto)?;
    let session = deployment.session();

    // Drive load while migrating the context around the deployment.
    let handles: Vec<_> = (0..300)
        .map(|_| {
            session
                .submit_event(counter, "incr", args!["n", 1])
                .unwrap()
        })
        .collect();
    let servers = deployment.servers();
    for i in 0..6 {
        manager.migrate(counter, servers[i % servers.len()])?;
    }
    for handle in handles {
        handle.wait()?;
    }
    let value = session.call_readonly(counter, "get", args!["n"])?;
    println!("counter after 300 increments and 6 migrations: {value}");
    assert_eq!(value, Value::from(300i64));

    // A replacement eManager recovers from the persisted mapping.
    let replacement = EManager::new(deployment.clone(), store);
    let finished = replacement.recover()?;
    println!("replacement eManager completed {finished} in-flight migrations");
    println!("context now lives on {}", deployment.placement_of(counter)?);
    deployment.shutdown();
    Ok(())
}
