//! The multiplayer game of §2 of the paper on the real runtime: players move
//! gold from their private mines into a treasure shared with the whole room,
//! concurrently, while the building aggregates statistics read-only.
//!
//! Run with `cargo run --example game`.

use aeon::prelude::*;
use aeon_apps::game::{deploy_game, game_class_graph};

fn main() -> Result<()> {
    let runtime = AeonRuntime::builder()
        .servers(4)
        .class_graph(game_class_graph())
        .build()?;
    let world = deploy_game(&runtime, 4, 4)?;
    let client = runtime.client();

    // Every player is sequenced at its room (the dominator), so concurrent
    // gold transfers never violate strict serializability.
    let mut handles = Vec::new();
    for players in &world.players {
        for player in players {
            for _ in 0..10 {
                handles.push(client.submit_event(*player, "get_gold", args![5])?);
            }
        }
    }
    for handle in handles {
        handle.wait()?;
    }

    for (i, treasure) in world.treasures.iter().enumerate() {
        let gold = client.call_readonly(*treasure, "get", args!["gold"])?;
        println!("room {i}: treasure holds {gold} gold");
        assert_eq!(gold, Value::from(4 * 10 * 5i64));
    }
    let players = client.call_readonly(world.building, "count_players", args![])?;
    println!("players online: {players}");
    println!(
        "dominator of player[0][0] is the room: {:?}",
        runtime.dominator_of(world.players[0][0])?
    );
    runtime.shutdown();
    Ok(())
}
