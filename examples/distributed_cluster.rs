//! The distributed deployment as N real OS processes.
//!
//! Run with `cargo run --example distributed_cluster`.
//!
//! The parent process is the *gateway*: it spawns three copies of itself in
//! the `node` role (each one a full cluster server bound to its own TCP
//! listener on loopback, exactly what the `aeon-node` binary does), builds a
//! [`Cluster`] over `ClusterTransport::TcpMesh`, and then drives the same
//! workload the in-process example runs — context creation, events, remote
//! calls, a live migration, and a snapshot/restore — with every message
//! crossing a real socket.
//!
//! For a deployment across machines, replace the self-spawn with the
//! `aeon-node` binary on each host and give the gateway the peer map.

use aeon::cluster::{run_node, Cluster, ClusterTransport, NodeProcessConfig};
use aeon::prelude::*;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command};
use std::sync::Arc;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("node") => node_main(&args.collect::<Vec<_>>()),
        _ => gateway_main(),
    }
}

/// Child-process role: one cluster server (what `aeon-node` does).
///
/// Args: `<id> <listen> <gateway> [<peer-id>=<peer-addr>]...`
fn node_main(args: &[String]) -> Result<()> {
    let id = ServerId::new(args[0].parse().expect("node id"));
    let listen: SocketAddr = args[1].parse().expect("listen addr");
    let gateway: SocketAddr = args[2].parse().expect("gateway addr");
    let mut config = NodeProcessConfig::new(id, listen, gateway);
    for spec in &args[3..] {
        let (peer, addr) = spec.split_once('=').expect("id=addr");
        config = config.peer(
            ServerId::new(peer.parse().expect("peer id")),
            addr.parse().expect("peer addr"),
        );
    }
    run_node(config, |directory| {
        // Factories let this process rebuild contexts from serialised
        // state: initial hosting, migration, and restore all arrive as
        // class name + captured state over the wire.
        for class in ["Room", "Item"] {
            directory.register_factory(
                class,
                Arc::new(move |state: &Value| {
                    let mut kv = KvContext::new(class);
                    ContextObject::restore(&mut kv, state);
                    Box::new(kv) as Box<dyn ContextObject>
                }),
            );
        }
    })
}

/// Reserves an ephemeral loopback port per cluster role.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn gateway_main() -> Result<()> {
    const SERVERS: u32 = 3;
    let addrs = free_addrs(SERVERS as usize + 1);
    let gateway_addr = addrs[0];
    let peers: BTreeMap<ServerId, SocketAddr> = (0..SERVERS)
        .map(|i| (ServerId::new(i), addrs[i as usize + 1]))
        .collect();

    // Spawn one OS process per server.
    let exe = std::env::current_exe().expect("current exe");
    let mut children: Vec<Child> = Vec::new();
    for (id, addr) in &peers {
        let mut command = Command::new(&exe);
        command
            .arg("node")
            .arg(id.raw().to_string())
            .arg(addr.to_string())
            .arg(gateway_addr.to_string());
        for (peer, peer_addr) in &peers {
            if peer != id {
                command.arg(format!("{}={}", peer.raw(), peer_addr));
            }
        }
        children.push(command.spawn().expect("spawn node process"));
    }
    println!("spawned {SERVERS} node processes, gateway on {gateway_addr}");

    let cluster = Cluster::builder()
        .transport(ClusterTransport::TcpMesh {
            listen: gateway_addr,
            peers,
        })
        .build()?;
    let servers = cluster.servers();
    println!("cluster sees servers {servers:?}");

    // The gateway needs factories too: restore rebuilds the object here
    // before shipping it to the hosting server.
    for class in ["Room", "Item"] {
        cluster.register_class_factory(
            class,
            Arc::new(move |state: &Value| {
                let mut kv = KvContext::new(class);
                ContextObject::restore(&mut kv, state);
                Box::new(kv) as Box<dyn ContextObject>
            }),
        );
    }

    // A Room on each server, each owning a couple of Items — the Host
    // message carries class + captured state; each node process rebuilds
    // the object with its registered factory.
    let mut rooms = Vec::new();
    let mut items = Vec::new();
    for server in &servers {
        let room =
            cluster.create_context(Box::new(KvContext::new("Room")), Placement::Server(*server))?;
        for _ in 0..2 {
            let item = cluster.create_owned_context(Box::new(KvContext::new("Item")), &[room])?;
            items.push(item);
        }
        rooms.push(room);
    }

    // Events: every call here crosses the wire to the hosting process.
    let client = cluster.client();
    for (i, item) in items.iter().enumerate() {
        client.call(*item, "set", args!["gold", (i as i64 + 1) * 10])?;
    }
    for (i, item) in items.iter().enumerate() {
        assert_eq!(
            client.call_readonly(*item, "get", args!["gold"])?,
            Value::from((i as i64 + 1) * 10),
        );
    }

    // Live migration between two processes: serialised state leaves one
    // node's address space and is installed in another's.
    let item = items[0];
    println!("item {item} initially on {}", cluster.placement_of(item)?);
    let bytes = cluster.migrate_context(item, *servers.last().expect("servers exist"))?;
    println!(
        "migrated {bytes} bytes of serialized state to {}",
        cluster.placement_of(item)?
    );
    println!(
        "gold after migration: {}",
        client.call_readonly(item, "get", args!["gold"])?
    );

    // Snapshot a room's subtree in one process, mutate, restore: the
    // restored state travels back out to the hosting process.
    let room = rooms[0];
    client.call(room, "set", args!["time", 1i64])?;
    let snapshot = cluster.snapshot_context(room)?;
    client.call(room, "set", args!["time", 99i64])?;
    cluster.restore_snapshot(&snapshot)?;
    assert_eq!(
        client.call_readonly(room, "get", args!["time"])?,
        Value::from(1i64),
        "restore rolled the room back to the snapshot"
    );
    println!("snapshot/restore round-tripped across processes");

    let stats = cluster.network_stats();
    println!(
        "network traffic: {} remote msgs, {} bytes sent, {} bytes received",
        stats.remote_messages(),
        stats.bytes_sent(),
        stats.bytes_received()
    );

    cluster.shutdown();
    for mut child in children {
        let status = child.wait().expect("node process exit");
        assert!(status.success(), "node process failed: {status}");
    }
    println!("all node processes shut down cleanly");
    Ok(())
}
