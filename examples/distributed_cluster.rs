//! The distributed deployment: the game world spread over message-passing
//! server nodes, with a live migration while events keep flowing.
//!
//! Run with `cargo run --example distributed_cluster`.

use aeon::cluster::Cluster;
use aeon::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // Three servers connected by the in-process network.
    let cluster = Cluster::builder().servers(3).build()?;
    let servers = cluster.servers();

    // Register a factory so Item contexts can be migrated (their state is
    // serialised on the source and rebuilt on the destination).
    cluster.register_class_factory(
        "Item",
        Arc::new(|state: &Value| {
            let mut item = KvContext::new("Item");
            ContextObject::restore(&mut item, state);
            Box::new(item) as Box<dyn ContextObject>
        }),
    );

    // A Room on each server, each owning a couple of Items.
    let mut rooms = Vec::new();
    let mut items = Vec::new();
    for server in &servers {
        let room =
            cluster.create_context(Box::new(KvContext::new("Room")), Placement::Server(*server))?;
        for _ in 0..2 {
            let item = cluster.create_owned_context(Box::new(KvContext::new("Item")), &[room])?;
            items.push(item);
        }
        rooms.push(room);
    }

    let client = cluster.client();
    for (i, item) in items.iter().enumerate() {
        client.call(*item, "set", args!["gold", (i as i64 + 1) * 10])?;
    }

    // Live migration: move the first item to the last server while reading it.
    let item = items[0];
    println!("item {item} initially on {}", cluster.placement_of(item)?);
    let bytes = cluster.migrate_context(item, *servers.last().expect("servers exist"))?;
    println!(
        "migrated {bytes} bytes of serialized state to {}",
        cluster.placement_of(item)?
    );
    println!(
        "gold after migration: {}",
        client.call_readonly(item, "get", args!["gold"])?
    );

    let stats = cluster.network_stats();
    println!(
        "network traffic: {} local msgs, {} remote msgs",
        stats.local_messages(),
        stats.remote_messages()
    );
    println!(
        "events executed per server: {:?}",
        cluster.events_executed()
    );
    cluster.shutdown();
    Ok(())
}
