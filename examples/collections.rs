//! Inductive data structures built from contexts (§3's reflexive-ownership
//! exception): a sorted linked-list set and a binary search tree whose nodes
//! are individual, independently migratable contexts.
//!
//! Run with `cargo run --example collections`.

use aeon::prelude::*;
use aeon_apps::collections::{collections_class_graph, deploy_list_set, deploy_search_tree};

fn main() -> Result<()> {
    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(collections_class_graph())
        .build()?;
    let client = runtime.client();

    // --- linked list set -------------------------------------------------
    let list = deploy_list_set(&runtime)?;
    for key in [42i64, 7, 19, 7, 3, 99] {
        client.call(list, "insert", args![key])?;
    }
    client.call(list, "remove", args![19i64])?;
    println!(
        "list contents : {}",
        client.call_readonly(list, "to_list", args![])?
    );
    println!(
        "list length   : {}",
        client.call_readonly(list, "len", args![])?
    );
    println!(
        "contains 7?   : {}",
        client.call_readonly(list, "contains", args![7i64])?
    );

    // --- binary search tree ----------------------------------------------
    let tree = deploy_search_tree(&runtime)?;
    for key in [50i64, 20, 80, 10, 35, 65, 95] {
        client.call(tree, "insert", args![key])?;
    }
    println!(
        "tree in order : {}",
        client.call_readonly(tree, "in_order", args![])?
    );
    println!(
        "tree minimum  : {}",
        client.call_readonly(tree, "min", args![])?
    );

    // Every node is a context in the ownership DAG.
    let graph = runtime.ownership_graph();
    println!("contexts in the ownership network: {}", graph.len());
    runtime.shutdown();
    Ok(())
}
