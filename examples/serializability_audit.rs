//! Checking the paper's §4 claim on a live run: a concurrent bank-transfer
//! workload is recorded and its history is verified to be strictly
//! serializable, alongside the value-level invariant that money is
//! conserved.
//!
//! Run with `cargo run --example serializability_audit`.

use aeon::checker::bank::{run_bank_workload, BankConfig};
use aeon::Result;

fn main() -> Result<()> {
    let config = BankConfig {
        branches: 4,
        accounts_per_branch: 3,
        shared_accounts: 1, // multi-ownership: accounts shared between branches
        clients: 6,
        transfers_per_client: 40,
        audit_every: 8,
        async_percent: 30,
        servers: 4,
        ..BankConfig::default()
    };
    let report = run_bank_workload(&config)?;

    println!("transfers executed : {}", report.transfers);
    println!("read-only audits   : {}", report.audits);
    println!("events recorded    : {}", report.history.event_count());
    println!("operations recorded: {}", report.history.operation_count());
    println!("expected total     : {}", report.expected_total);
    println!("observed total     : {}", report.final_total);
    match &report.serializability {
        Ok(order) => println!(
            "strictly serializable: yes (equivalent serial order over {} events)",
            order.order.len()
        ),
        Err(violation) => println!("strictly serializable: NO — {violation}"),
    }
    assert!(
        report.is_correct(),
        "the AEON runtime must produce correct executions"
    );
    Ok(())
}
