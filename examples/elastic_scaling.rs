//! Elasticity: an eManager with a server-contention policy scales the
//! deployment out as contexts are created, rebalancing them without
//! violating consistency.
//!
//! The manager only sees `dyn Deployment`, so the backend is a command-line
//! choice: `cargo run --example elastic_scaling -- [runtime|cluster|sim]`
//! (default: runtime).

use aeon::prelude::*;

fn main() -> Result<()> {
    let backend: Backend = std::env::args()
        .nth(1)
        .map(|arg| arg.parse())
        .transpose()?
        .unwrap_or_default();
    let deployment = aeon::deploy_shared(DeployConfig::new(backend).servers(1))?;
    // Rebalancing migrations rebuild context state through the class
    // factory on backends that ship it between servers (the cluster).
    deployment.register_class_factory(
        "Room",
        std::sync::Arc::new(|state: &Value| {
            let mut room = KvContext::new("Room");
            ContextObject::restore(&mut room, state);
            Box::new(room) as Box<dyn ContextObject>
        }),
    );
    let manager = EManager::new(deployment.clone(), InMemoryStore::new());
    manager.add_policy(Box::new(ServerContentionPolicy::new(8)));
    manager.set_max_servers(8);

    let session = deployment.session();
    let mut rooms = Vec::new();
    for wave in 0..4 {
        // A new wave of rooms joins the game.
        for _ in 0..12 {
            let room =
                deployment.create_context(Box::new(KvContext::new("Room")), Placement::Auto)?;
            session.call(room, "set", args!["wave", wave])?;
            rooms.push(room);
        }
        let actions = manager.tick(&manager.collect_metrics())?;
        println!(
            "wave {wave}: {} contexts on {} servers, actions: {actions:?}",
            deployment.context_count(),
            deployment.servers().len()
        );
    }

    // No state was lost during the rebalancing migrations.
    for (i, room) in rooms.iter().enumerate() {
        let wave = session.call_readonly(*room, "get", args!["wave"])?;
        assert_eq!(wave, Value::from((i / 12) as i64));
    }
    println!(
        "final fleet ({}): {} servers",
        deployment.backend_name(),
        deployment.servers().len()
    );
    deployment.shutdown();
    Ok(())
}
