//! Elasticity: an eManager with a server-contention policy scales the
//! cluster out as contexts are created, rebalancing them without violating
//! consistency.
//!
//! Run with `cargo run --example elastic_scaling`.

use aeon::prelude::*;

fn main() -> Result<()> {
    let runtime = AeonRuntime::builder().servers(1).build()?;
    let manager = EManager::new(runtime.clone(), InMemoryStore::new());
    manager.add_policy(Box::new(ServerContentionPolicy::new(8)));
    manager.set_max_servers(8);

    let client = runtime.client();
    let mut rooms = Vec::new();
    for wave in 0..4 {
        // A new wave of rooms joins the game.
        for _ in 0..12 {
            let room = runtime.create_context(Box::new(KvContext::new("Room")), Placement::Auto)?;
            client.call(room, "set", args!["wave", wave])?;
            rooms.push(room);
        }
        let actions = manager.tick(&manager.collect_metrics())?;
        println!(
            "wave {wave}: {} contexts on {} servers, actions: {actions:?}",
            runtime.context_count(),
            runtime.servers().len()
        );
    }

    // No state was lost during the rebalancing migrations.
    for (i, room) in rooms.iter().enumerate() {
        let wave = client.call_readonly(*room, "get", args!["wave"])?;
        assert_eq!(wave, Value::from((i / 12) as i64));
    }
    println!(
        "final fleet: {} servers, {} migrations",
        runtime.servers().len(),
        runtime.stats().migrations()
    );
    runtime.shutdown();
    Ok(())
}
