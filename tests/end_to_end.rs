//! Cross-crate integration tests: the full stack (runtime + ownership +
//! eManager + storage) exercised through the public facade, plus shape
//! checks of the evaluation harness.

use aeon::prelude::*;
use aeon_apps::game::{deploy_game, game_class_graph, GameWorkload, GameWorkloadConfig};
use aeon_apps::tpcc::{deploy_tpcc, run_payment, tpcc_class_graph};
use aeon_sim::{Simulator, SystemKind};
use aeon_types::SimDuration;

#[test]
fn game_world_under_concurrent_load_with_elasticity() {
    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(game_class_graph())
        .build()
        .unwrap();
    let manager = EManager::new(std::sync::Arc::new(runtime.clone()), InMemoryStore::new());
    manager.add_policy(Box::new(ServerContentionPolicy::new(8)));
    let world = deploy_game(&runtime, 4, 3).unwrap();
    let client = runtime.client();

    // Concurrent gold transfers in every room.
    let mut handles = Vec::new();
    for players in &world.players {
        for player in players {
            for _ in 0..5 {
                handles.push(client.submit_event(*player, "get_gold", args![2]).unwrap());
            }
        }
    }
    // Scale out while the events run.
    manager.tick(&manager.collect_metrics()).unwrap();
    for handle in handles {
        assert_eq!(handle.wait().unwrap(), Value::from(true));
    }
    // Strict serializability: every room's treasure holds exactly the moved
    // amount.
    for treasure in &world.treasures {
        assert_eq!(
            client
                .call_readonly(*treasure, "get", args!["gold"])
                .unwrap(),
            Value::from(3 * 5 * 2i64)
        );
    }
    assert!(runtime.servers().len() >= 2);
    assert_eq!(runtime.stats().events_failed(), 0);
    runtime.shutdown();
}

#[test]
fn tpcc_consistency_survives_checkpoint_restore_and_migration() {
    let runtime = AeonRuntime::builder()
        .servers(3)
        .class_graph(tpcc_class_graph())
        .build()
        .unwrap();
    let manager = EManager::new(std::sync::Arc::new(runtime.clone()), InMemoryStore::new());
    let world = deploy_tpcc(&runtime, 3, 5).unwrap();
    let client = runtime.client();

    for i in 0..60 {
        run_payment(&client, &world, i % 3, i % 5, 5).unwrap();
    }
    // Checkpoint the warehouse subtree, keep mutating, then restore.
    manager.checkpoint("after-60", world.warehouse).unwrap();
    for i in 0..30 {
        run_payment(&client, &world, i % 3, i % 5, 5).unwrap();
    }
    assert_eq!(
        client
            .call_readonly(world.warehouse, "ytd", args![])
            .unwrap(),
        Value::from(450i64)
    );
    manager.restore_checkpoint("after-60").unwrap();
    assert_eq!(
        client
            .call_readonly(world.warehouse, "ytd", args![])
            .unwrap(),
        Value::from(300i64)
    );
    // Migrate a district and verify the invariant still holds.
    let district = world.districts[0];
    let target = runtime
        .servers()
        .into_iter()
        .find(|s| *s != runtime.placement_of(district).unwrap())
        .unwrap();
    manager.migrate(district, target).unwrap();
    let d_sum: i64 = world
        .districts
        .iter()
        .map(|d| {
            client
                .call_readonly(*d, "ytd", args![])
                .unwrap()
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(d_sum, 300);
    runtime.shutdown();
}

#[test]
fn ownership_network_is_recoverable_from_storage() {
    let runtime = AeonRuntime::builder().servers(1).build().unwrap();
    let room = runtime
        .create_context(Box::new(KvContext::new("Room")), Placement::Auto)
        .unwrap();
    let item = runtime
        .create_owned_context(Box::new(KvContext::new("Item")), &[room])
        .unwrap();
    let manager = EManager::new(std::sync::Arc::new(runtime.clone()), InMemoryStore::new());
    manager.persist_ownership().unwrap();
    let graph = OwnershipGraph::from_value(&manager.load_ownership().unwrap()).unwrap();
    assert!(graph.is_ancestor(room, item));
    runtime.shutdown();
}

#[test]
fn simulator_reproduces_game_figure_headline() {
    // Headline result of Figure 5a at 16 servers: AEON beats EventWave by a
    // large factor (the paper reports ~5x) and beats the strict Orleans
    // variant, while the non-serializable Orleans* sits in between.
    let config = GameWorkloadConfig::for_servers(16);
    let throughput = |system: SystemKind| {
        let mut w = GameWorkload::generate(system, &config);
        let m = Simulator::new().run(&mut w.cluster, &w.requests);
        m.throughput(Some(aeon_types::SimTime::ZERO + config.duration))
    };
    let aeon = throughput(SystemKind::Aeon);
    let eventwave = throughput(SystemKind::EventWave);
    let orleans = throughput(SystemKind::OrleansStrict);
    assert!(
        aeon > 2.0 * eventwave,
        "AEON {aeon} vs EventWave {eventwave}"
    );
    assert!(aeon > orleans, "AEON {aeon} vs Orleans {orleans}");
}

#[test]
fn simulator_latency_grows_with_offered_load() {
    // Figure 5b shape: latency stays flat until the knee, then rises.
    let low = GameWorkloadConfig {
        servers: 4,
        request_rate: 1_000.0,
        duration: SimDuration::from_secs(5),
        ..GameWorkloadConfig::default()
    };
    let high = GameWorkloadConfig {
        request_rate: 20_000.0,
        ..low.clone()
    };
    let latency = |config: &GameWorkloadConfig| {
        let mut w = GameWorkload::generate(SystemKind::Aeon, config);
        Simulator::new()
            .run(&mut w.cluster, &w.requests)
            .mean_latency_ms()
    };
    assert!(latency(&high) > 2.0 * latency(&low));
}
