//! Cross-backend parity: one generic workload driver, three deployments.
//!
//! Every test in this file takes a `&dyn Deployment` and is executed
//! against the in-process runtime (`AeonRuntime`), the distributed cluster
//! (`Cluster`), and the deterministic simulator (`SimDeployment`).  This is
//! the paper's central promise made executable: a contextclass program is
//! written once and behaves identically on every execution substrate.

use aeon::prelude::*;
use aeon_apps::game::{deploy_game, game_class_graph, Player, Room};

/// Registers snapshot factories for the game classes, so crash-recovery
/// and restore-based operations work on backends that rebuild objects from
/// serialised state (the cluster).
fn register_game_factories(deployment: &dyn Deployment) {
    deployment.register_class_factory(
        "Room",
        std::sync::Arc::new(|state: &Value| {
            let mut room = Room::default();
            ContextObject::restore(&mut room, state);
            Box::new(room) as Box<dyn ContextObject>
        }),
    );
    deployment.register_class_factory(
        "Player",
        std::sync::Arc::new(|state: &Value| {
            let mut player = Player::default();
            ContextObject::restore(&mut player, state);
            Box::new(player) as Box<dyn ContextObject>
        }),
    );
    deployment.register_class_factory(
        "Item",
        std::sync::Arc::new(|state: &Value| {
            let mut item = KvContext::new("Item");
            ContextObject::restore(&mut item, state);
            Box::new(item) as Box<dyn ContextObject>
        }),
    );
}

/// Runs `scenario` against all three backends, labelling failures with the
/// backend name.
fn on_every_backend(scenario: impl Fn(&dyn Deployment)) {
    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(game_class_graph())
        .build()
        .unwrap();
    scenario(&runtime);
    runtime.shutdown();

    let cluster = Cluster::builder()
        .servers(2)
        .class_graph(game_class_graph())
        .build()
        .unwrap();
    scenario(&cluster);
    cluster.shutdown();

    // The same cluster again, but with every message crossing a real TCP
    // socket on loopback instead of an in-process channel.
    let tcp = Cluster::builder()
        .servers(2)
        .transport(ClusterTransport::TcpLoopback)
        .class_graph(game_class_graph())
        .build()
        .unwrap();
    scenario(&tcp);
    tcp.shutdown();

    let sim = SimDeployment::builder()
        .servers(2)
        .class_graph(game_class_graph())
        .build()
        .unwrap();
    scenario(&sim);
}

#[test]
fn game_driver_runs_unchanged_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        let world = deploy_game(deployment, 2, 2).unwrap();
        let session = deployment.session();
        for players in &world.players {
            for player in players {
                assert_eq!(
                    session.call(*player, "get_gold", args![7]).unwrap(),
                    Value::Bool(true),
                    "backend {backend}"
                );
            }
        }
        for treasure in &world.treasures {
            assert_eq!(
                session
                    .call_readonly(*treasure, "get", args!["gold"])
                    .unwrap(),
                Value::from(14i64),
                "backend {backend}"
            );
        }
        assert_eq!(
            session
                .call_readonly(world.building, "count_players", args![])
                .unwrap(),
            Value::from(4i64),
            "backend {backend}"
        );
    });
}

#[test]
fn unknown_methods_yield_unknown_method_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        let world = deploy_game(deployment, 1, 1).unwrap();
        let session = deployment.session();
        let err = session
            .call(world.building, "no_such_method", args![])
            .unwrap_err();
        assert!(
            matches!(&err, AeonError::UnknownMethod { class, method }
                if class == "Building" && method == "no_such_method"),
            "backend {backend}: {err}"
        );
    });
}

#[test]
fn writes_from_readonly_events_are_rejected_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        let world = deploy_game(deployment, 1, 1).unwrap();
        let session = deployment.session();
        // `update_time_of_day` is an update method; submitting it read-only
        // must fail uniformly.
        let err = session
            .call_readonly(world.rooms[0], "update_time_of_day", args![])
            .unwrap_err();
        assert!(
            matches!(err, AeonError::ReadOnlyViolation { .. }),
            "backend {backend}"
        );
    });
}

#[test]
fn snapshot_restore_round_trips_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        // Deliberately no factories: snapshot/restore of still-hosted
        // contexts must work in place on every backend.
        let world = deploy_game(deployment, 1, 1).unwrap();
        let session = deployment.session();
        let room = world.rooms[0];
        session.call(room, "update_time_of_day", args![]).unwrap();
        let snapshot = deployment.snapshot_context(room).unwrap();
        assert!(!snapshot.is_empty(), "backend {backend}");
        // Mutate past the snapshot, then roll back.
        session.call(room, "update_time_of_day", args![]).unwrap();
        session.call(room, "update_time_of_day", args![]).unwrap();
        deployment.restore_snapshot(&snapshot).unwrap();
        assert_eq!(
            session.call(room, "update_time_of_day", args![]).unwrap(),
            Value::from(2i64),
            "backend {backend}: restore rolled the room back to time 1"
        );
    });
}

#[test]
fn migration_preserves_state_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        register_game_factories(deployment);
        let world = deploy_game(deployment, 1, 1).unwrap();
        let session = deployment.session();
        let room = world.rooms[0];
        session.call(room, "update_time_of_day", args![]).unwrap();
        let from = deployment.placement_of(room).unwrap();
        let to = deployment
            .servers()
            .into_iter()
            .find(|s| *s != from)
            .expect("two servers configured");
        let moved = deployment.migrate_context(room, to).unwrap();
        assert!(moved > 0, "backend {backend}");
        assert_eq!(
            deployment.placement_of(room).unwrap(),
            to,
            "backend {backend}"
        );
        assert_eq!(
            session.call(room, "update_time_of_day", args![]).unwrap(),
            Value::from(2i64),
            "backend {backend}: state survived the migration"
        );
    });
}

#[test]
fn colocation_with_contexts_on_crashed_servers_is_rejected_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        let spare = deployment.add_server();
        let doomed = deployment
            .create_context(Box::new(Room::default()), Placement::Server(spare))
            .unwrap();
        deployment.crash_server(spare).unwrap();
        // Neither explicit placement nor co-location may land new contexts
        // on the crashed server.
        let err = deployment
            .create_context(Box::new(Room::default()), Placement::Server(spare))
            .unwrap_err();
        assert!(
            matches!(err, AeonError::ServerNotFound(_)),
            "backend {backend}: {err}"
        );
        let err = deployment
            .create_context(Box::new(Room::default()), Placement::WithContext(doomed))
            .unwrap_err();
        assert!(
            matches!(err, AeonError::ServerNotFound(_)),
            "backend {backend}: {err}"
        );
        let err = deployment
            .create_owned_context(Box::new(Room::default()), &[doomed])
            .unwrap_err();
        assert!(
            matches!(
                err,
                AeonError::ServerNotFound(_) | AeonError::ContextNotFound(_)
            ),
            "backend {backend}: {err}"
        );
    });
}

// ---------------------------------------------------------------------------
// Elasticity parity: the eManager holds an `Arc<dyn Deployment>`, so every
// elasticity scenario (policy-driven scale-out, drain, pins, crash
// recovery) must behave identically on all three backends.  The backends
// are built through the config-driven `aeon::deploy` entry point.
// ---------------------------------------------------------------------------

/// Runs `scenario` with a shared deployment handle (the shape the
/// elasticity manager holds) against all three backends.
fn on_every_backend_shared(scenario: impl Fn(std::sync::Arc<dyn Deployment>)) {
    for backend in Backend::ALL {
        let deployment = aeon::deploy_shared(DeployConfig::new(backend).servers(2)).unwrap();
        scenario(deployment.clone());
        deployment.shutdown();
    }
}

/// Registers the snapshot factory for the plain "Item" KvContext class used
/// by the elasticity scenarios.
fn register_item_factory(deployment: &dyn Deployment) {
    deployment.register_class_factory(
        "Item",
        std::sync::Arc::new(|state: &Value| {
            let mut item = KvContext::new("Item");
            ContextObject::restore(&mut item, state);
            Box::new(item) as Box<dyn ContextObject>
        }),
    );
}

/// Creates `n` Item contexts, each tagged with its index.
fn seed_items(deployment: &dyn Deployment, n: usize) -> Vec<ContextId> {
    let session = deployment.session();
    (0..n)
        .map(|i| {
            let item = deployment
                .create_context(Box::new(KvContext::new("Item")), Placement::Auto)
                .unwrap();
            session.call(item, "set", args!["tag", i as i64]).unwrap();
            item
        })
        .collect()
}

/// Every item still answers with its tag (no state lost to migrations).
fn assert_items_intact(deployment: &dyn Deployment, items: &[ContextId], backend: &str) {
    let session = deployment.session();
    for (i, item) in items.iter().enumerate() {
        assert_eq!(
            session.call_readonly(*item, "get", args!["tag"]).unwrap(),
            Value::from(i as i64),
            "backend {backend}: item {i} lost state"
        );
    }
}

#[test]
fn emanager_scales_out_on_overload_on_every_backend() {
    on_every_backend_shared(|deployment| {
        let backend = deployment.backend_name();
        register_item_factory(deployment.as_ref());
        let items = seed_items(deployment.as_ref(), 8);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        manager.add_policy(Box::new(ServerContentionPolicy::new(2)));
        let before = deployment.servers().len();
        let actions = manager.tick(&manager.collect_metrics()).unwrap();
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, ElasticityAction::ScaleOut { .. })),
            "backend {backend}: {actions:?}"
        );
        assert!(deployment.servers().len() > before, "backend {backend}");
        // A second tick settles every server under the contention limit.
        manager.tick(&manager.collect_metrics()).unwrap();
        for server in deployment.servers() {
            assert!(
                deployment.contexts_on(server).len() <= 3,
                "backend {backend}: server {server} still overloaded"
            );
        }
        assert_items_intact(deployment.as_ref(), &items, backend);
    });
}

#[test]
fn emanager_drains_and_releases_a_server_on_every_backend() {
    on_every_backend_shared(|deployment| {
        let backend = deployment.backend_name();
        register_item_factory(deployment.as_ref());
        let items = seed_items(deployment.as_ref(), 6);
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        let victim = deployment.servers()[1];
        manager.drain_server(victim).unwrap();
        assert!(
            deployment.contexts_on(victim).is_empty(),
            "backend {backend}"
        );
        deployment.remove_server(victim).unwrap();
        assert!(!deployment.servers().contains(&victim), "backend {backend}");
        assert_items_intact(deployment.as_ref(), &items, backend);
    });
}

#[test]
fn emanager_respects_pinned_contexts_on_every_backend() {
    on_every_backend_shared(|deployment| {
        let backend = deployment.backend_name();
        register_item_factory(deployment.as_ref());
        // Pack everything onto one server, then pin it all.
        let first = deployment.servers()[0];
        let items: Vec<ContextId> = (0..4)
            .map(|_| {
                deployment
                    .create_context(Box::new(KvContext::new("Item")), Placement::Server(first))
                    .unwrap()
            })
            .collect();
        let manager = EManager::new(deployment.clone(), InMemoryStore::new());
        for item in &items {
            manager.pin_context(*item);
        }
        manager.rebalance_from(first).unwrap();
        assert_eq!(
            deployment.contexts_on(first).len(),
            4,
            "backend {backend}: pinned contexts moved"
        );
    });
}

#[test]
fn emanager_recovers_interrupted_migrations_on_every_backend() {
    use aeon::emanager::{MigrationRecord, MigrationStep};
    use aeon::storage::CloudStore;

    on_every_backend_shared(|deployment| {
        let backend = deployment.backend_name();
        register_item_factory(deployment.as_ref());
        let items = seed_items(deployment.as_ref(), 1);
        let ctx = items[0];
        let from = deployment.placement_of(ctx).unwrap();
        let to = deployment
            .servers()
            .into_iter()
            .find(|s| *s != from)
            .unwrap();
        let store = InMemoryStore::new();
        // Simulate a predecessor eManager that crashed after step II.
        {
            let arc_store: std::sync::Arc<dyn CloudStore> = std::sync::Arc::new(store.clone());
            MigrationRecord {
                context: ctx,
                from,
                to,
                step: MigrationStep::SourceStopped,
            }
            .persist(&arc_store)
            .unwrap();
        }
        let replacement = EManager::new(deployment.clone(), store);
        let finished = replacement.recover().unwrap();
        assert_eq!(finished, 1, "backend {backend}");
        assert_eq!(
            deployment.placement_of(ctx).unwrap(),
            to,
            "backend {backend}"
        );
        assert_eq!(
            replacement.mapping().lookup(ctx).unwrap(),
            to,
            "backend {backend}"
        );
        assert_items_intact(deployment.as_ref(), &items, backend);
    });
}

#[test]
fn server_metrics_reflect_load_on_every_backend() {
    on_every_backend_shared(|deployment| {
        let backend = deployment.backend_name();
        let _items = seed_items(deployment.as_ref(), 5);
        let metrics = deployment.server_metrics();
        assert_eq!(
            metrics.len(),
            deployment.servers().len(),
            "backend {backend}"
        );
        let total: usize = metrics.iter().map(|m| m.context_count).sum();
        assert_eq!(total, 5, "backend {backend}");
        for m in &metrics {
            assert!(
                (0.0..=1.0).contains(&m.cpu),
                "backend {backend}: cpu out of range"
            );
            assert_eq!(
                m.context_count,
                deployment.contexts_on(m.server).len(),
                "backend {backend}"
            );
        }
    });
}

#[test]
fn elasticity_scale_out_works_on_every_backend() {
    on_every_backend(|deployment| {
        let backend = deployment.backend_name();
        let before = deployment.servers().len();
        let added = deployment.add_server();
        let after = deployment.servers();
        assert_eq!(after.len(), before + 1, "backend {backend}");
        assert!(after.contains(&added), "backend {backend}");
        // The new server is immediately usable for placement.
        let item = deployment
            .create_context(Box::new(Room::default()), Placement::Server(added))
            .unwrap();
        assert_eq!(
            deployment.placement_of(item).unwrap(),
            added,
            "backend {backend}"
        );
    });
}

// ---------------------------------------------------------------------------
// Coordinated snapshot freeze parity (bank workload).
// ---------------------------------------------------------------------------

mod snapshot_freeze {
    use super::*;
    use aeon_apps::bank::{
        bank_class_graph, captured_account_total, deploy_bank, register_bank_factories,
        BankWorldConfig,
    };
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn on_every_bank_backend(scenario: impl Fn(Arc<dyn Deployment>)) {
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        scenario(Arc::new(runtime.clone()));
        runtime.shutdown();

        let cluster = Cluster::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        scenario(Arc::new(cluster.clone()));
        cluster.shutdown();

        let tcp = Cluster::builder()
            .servers(2)
            .transport(ClusterTransport::TcpLoopback)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        scenario(Arc::new(tcp.clone()));
        tcp.shutdown();

        let sim = SimDeployment::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        scenario(Arc::new(sim));
    }

    /// Snapshot under concurrent mutations, mutate some more, restore:
    /// every account must come back to the value captured at the frozen
    /// cut — not a torn mix — and the cut itself must conserve the total.
    #[test]
    fn snapshot_restore_round_trips_to_the_frozen_cut_on_every_backend() {
        on_every_bank_backend(|deployment| {
            let backend = deployment.backend_name();
            register_bank_factories(&*deployment);
            let config = BankWorldConfig {
                branches: 3,
                accounts_per_branch: 3,
                shared_pairs: 1,
                shared_accounts: 1,
                initial_balance: 100,
            };
            let world = deploy_bank(&*deployment, &config).unwrap();
            let expected = world.expected_total(&config);

            // Concurrent transfer load while the snapshot is taken.
            let stop = Arc::new(AtomicBool::new(false));
            let writers: Vec<_> = (0..2)
                .map(|w| {
                    let session = deployment.session();
                    let world = world.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut i = 0usize;
                        while !stop.load(Ordering::SeqCst) {
                            let b = (i + w) % world.branches.len();
                            let accounts = &world.accounts_of[b];
                            let from = accounts[i % accounts.len()];
                            let to = accounts[(i + 1) % accounts.len()];
                            let _ =
                                session.call(world.branches[b], "transfer", args![from, to, 1i64]);
                            i += 1;
                        }
                    })
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(40));

            let snapshot = deployment.snapshot_context(world.bank).unwrap();
            assert_eq!(
                captured_account_total(&snapshot),
                expected,
                "backend {backend}: the frozen cut must conserve the total"
            );

            stop.store(true, Ordering::SeqCst);
            for writer in writers {
                writer.join().unwrap();
            }

            let cut: BTreeMap<ContextId, i64> = world
                .accounts
                .iter()
                .map(|a| {
                    let balance = snapshot
                        .get(*a)
                        .and_then(|e| e.state.get("balance"))
                        .and_then(Value::as_i64)
                        .expect("every account is captured");
                    (*a, balance)
                })
                .collect();

            // Mutations after the snapshot must be wound back by restore.
            let session = deployment.session();
            for (b, branch) in world.branches.iter().enumerate() {
                let accounts = &world.accounts_of[b];
                session
                    .call(*branch, "transfer", args![accounts[0], accounts[1], 17i64])
                    .unwrap();
            }

            deployment.restore_snapshot(&snapshot).unwrap();
            for account in &world.accounts {
                assert_eq!(
                    session.call_readonly(*account, "read", args![]).unwrap(),
                    Value::from(cut[account]),
                    "backend {backend}: account {account} must equal the frozen cut"
                );
            }
            assert_eq!(
                session.call_readonly(world.bank, "audit", args![]).unwrap(),
                Value::from(expected),
                "backend {backend}"
            );
        });
    }
}

/// The analyzer-certified read-only fast path: certified methods
/// (`Account::read`, `ro` with a `calls []` summary) take the fast path on
/// both live backends, uncertified read-only methods (`Branch::total`
/// declares `calls ["Account::read"]`) fall back to the sequenced slow
/// path, and both paths return identical values.
mod readonly_fast_path {
    use super::*;
    use aeon_apps::bank::{bank_class_graph, deploy_bank, BankWorldConfig};

    #[test]
    fn certified_reads_take_the_fast_path_on_every_live_backend() {
        let config = BankWorldConfig::default();
        let expected_read = Value::from(config.initial_balance);

        // In-process runtime: the counter lives on the sharded executor.
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .build()
            .unwrap();
        let world = deploy_bank(&runtime, &config).unwrap();
        let session = Deployment::session(&runtime);
        let before = runtime.executor_stats().fast_path;
        for account in &world.accounts {
            assert_eq!(
                session.call_readonly(*account, "read", args![]).unwrap(),
                expected_read
            );
        }
        assert_eq!(
            runtime.executor_stats().fast_path,
            before + world.accounts.len() as u64,
            "every certified read is served by the fast path"
        );
        // Uncertified read-only methods stay on the sequenced slow path.
        let total = session
            .call_readonly(world.branches[0], "total", args![])
            .unwrap();
        assert_eq!(
            runtime.executor_stats().fast_path,
            before + world.accounts.len() as u64,
            "an uncertified `ro` method must not take the fast path"
        );
        runtime.shutdown();

        // Distributed cluster, both transports: the gateway routes
        // certified reads as pre-sequenced Exec messages.
        for transport in [ClusterTransport::Channel, ClusterTransport::TcpLoopback] {
            let label = format!("{transport:?}");
            let cluster = Cluster::builder()
                .servers(2)
                .transport(transport)
                .class_graph(bank_class_graph())
                .build()
                .unwrap();
            let world = deploy_bank(&cluster, &config).unwrap();
            let session = Deployment::session(&cluster);
            let before = cluster.fast_path_events();
            for account in &world.accounts {
                assert_eq!(
                    session.call_readonly(*account, "read", args![]).unwrap(),
                    expected_read,
                    "transport {label}"
                );
            }
            assert_eq!(
                cluster.fast_path_events(),
                before + world.accounts.len() as u64,
                "transport {label}: every certified read is routed fast"
            );
            assert_eq!(
                session
                    .call_readonly(world.branches[0], "total", args![])
                    .unwrap(),
                total,
                "transport {label}: slow-path totals agree with the runtime"
            );
            assert_eq!(
                cluster.fast_path_events(),
                before + world.accounts.len() as u64,
                "transport {label}: uncertified `ro` stays sequenced"
            );
            cluster.shutdown();
        }
    }

    #[test]
    fn disabling_the_fast_path_preserves_results() {
        let config = BankWorldConfig::default();
        let runtime = AeonRuntime::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .readonly_fast_path(false)
            .build()
            .unwrap();
        let world = deploy_bank(&runtime, &config).unwrap();
        let session = Deployment::session(&runtime);
        for account in &world.accounts {
            assert_eq!(
                session.call_readonly(*account, "read", args![]).unwrap(),
                Value::from(config.initial_balance)
            );
        }
        assert_eq!(runtime.executor_stats().fast_path, 0);
        runtime.shutdown();

        let cluster = Cluster::builder()
            .servers(2)
            .class_graph(bank_class_graph())
            .readonly_fast_path(false)
            .build()
            .unwrap();
        let world = deploy_bank(&cluster, &config).unwrap();
        let session = Deployment::session(&cluster);
        for account in &world.accounts {
            assert_eq!(
                session.call_readonly(*account, "read", args![]).unwrap(),
                Value::from(config.initial_balance)
            );
        }
        assert_eq!(cluster.fast_path_events(), 0);
        cluster.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Social workload parity
// ---------------------------------------------------------------------------

/// Runs `scenario` against all four backends with the *social* class
/// graph (the game-graph helper above hardcodes its own classes).
fn on_every_social_backend(scenario: impl Fn(&dyn Deployment)) {
    use aeon_apps::social::social_class_graph;

    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    scenario(&runtime);
    runtime.shutdown();

    let cluster = Cluster::builder()
        .servers(2)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    scenario(&cluster);
    cluster.shutdown();

    let tcp = Cluster::builder()
        .servers(2)
        .transport(ClusterTransport::TcpLoopback)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    scenario(&tcp);
    tcp.shutdown();

    let sim = SimDeployment::builder()
        .servers(2)
        .contention(2)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    scenario(&sim);
}

#[test]
fn social_driver_reaches_identical_state_on_every_backend() {
    use aeon_apps::social::{
        deploy_social, generate_plan, register_social_factories, run_social_stream, SocialConfig,
    };
    use std::cell::RefCell;

    let config = SocialConfig {
        regions: 2,
        users: 16,
        chain_depth: 4,
        follows_per_user: 3,
        zipf_s: 1.2,
        feed_capacity: 6,
        seed: 0xfeed_50c1,
    };
    let ops = generate_plan(&config).request_stream(200, config.seed);
    let reference: RefCell<Option<Vec<i64>>> = RefCell::new(None);

    on_every_social_backend(|deployment| {
        let backend = deployment.backend_name();
        register_social_factories(deployment);
        let world = deploy_social(deployment, &config).unwrap();
        let session = deployment.session();
        let report = run_social_stream(session.as_ref(), &world, &ops).unwrap();
        assert_eq!(
            (report.posts + report.reads) as usize,
            ops.len(),
            "backend {backend}"
        );
        let digest = world.digest(session.as_ref()).unwrap();
        let mut slot = reference.borrow_mut();
        match slot.as_ref() {
            None => *slot = Some(digest),
            Some(expected) => assert_eq!(
                expected, &digest,
                "backend {backend} diverged from the reference final state"
            ),
        }
    });
}
