//! Scale and sanity checks for the Zipfian social-graph workload.
//!
//! Smoke-size runs execute on all three backends in CI and assert the
//! invariants that matter at scale: the directory (placement lookups agree
//! with per-server rosters), the placement spread, the `server_metrics()`
//! proxy gauges, and the memory bound (feed ring buffers never exceed
//! their configured capacity no matter how skewed the post stream is).
//!
//! The full-scale leg deploys ≥ 10⁶ contexts on the runtime backend and is
//! gated behind `AEON_SOCIAL_SCALE=1` (it allocates roughly a million
//! live contexts; CI runs smoke only):
//!
//! ```text
//! AEON_SOCIAL_SCALE=1 cargo test --release --test social_scale -- --ignored
//! ```
//!
//! The deterministic-replay regression at the bottom runs the same seeded
//! stream twice through the virtual-time simulator and requires bitwise
//! identical histories — the property every seeded repro in this repo
//! leans on.

use aeon::prelude::*;
use aeon_apps::social::{
    deploy_social, generate_plan, register_social_factories, run_social_stream, social_class_graph,
    SocialConfig,
};
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("AEON_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20260729)
}

fn smoke_config() -> SocialConfig {
    SocialConfig {
        regions: 2,
        users: 48,
        chain_depth: 6,
        follows_per_user: 3,
        zipf_s: 1.2,
        feed_capacity: 8,
        seed: chaos_seed(),
    }
}

/// The invariants a healthy deployment upholds at any scale.
fn assert_deployment_sane(deployment: &dyn Deployment, config: &SocialConfig) {
    let total = deployment.context_count();
    assert_eq!(
        total,
        config.total_contexts(),
        "backend {} lost or duplicated contexts",
        deployment.backend_name()
    );

    // Metrics: per-server context counts partition the fleet, and every
    // proxy gauge stays in its documented range.
    let metrics = deployment.server_metrics();
    let hosted: usize = metrics.iter().map(|m| m.context_count).sum();
    assert_eq!(hosted, total, "server_metrics context counts must sum up");
    for m in &metrics {
        assert!((0.0..=1.0).contains(&m.cpu), "cpu gauge out of range");
        assert!((0.0..=1.0).contains(&m.memory), "memory gauge out of range");
        assert!((0.0..=1.0).contains(&m.io), "io gauge out of range");
        assert!(m.avg_latency_ms >= 0.0);
    }

    // Directory: the per-server rosters and the point lookups must agree,
    // and together cover the whole fleet.
    let mut roster_total = 0usize;
    for server in deployment.servers() {
        let contexts = deployment.contexts_on(server);
        roster_total += contexts.len();
        // Point-check a bounded sample so the full-scale leg stays cheap.
        for context in contexts.iter().step_by((contexts.len() / 64).max(1)) {
            assert_eq!(
                deployment.placement_of(*context).unwrap(),
                server,
                "directory lookup disagrees with server roster"
            );
        }
    }
    assert_eq!(
        roster_total, total,
        "server rosters must partition the fleet"
    );
}

/// Deploys the smoke-size graph, replays the skewed stream, and checks
/// sanity plus the feed memory bound on the given backend.
fn smoke_scenario(deployment: &dyn Deployment) {
    register_social_factories(deployment);
    let config = smoke_config();
    let world = deploy_social(deployment, &config).unwrap();
    assert_deployment_sane(deployment, &config);

    let ops = generate_plan(&config).request_stream(400, config.seed);
    let session = deployment.session();
    let report = run_social_stream(session.as_ref(), &world, &ops).unwrap();
    assert_eq!((report.posts + report.reads) as usize, ops.len());
    assert!(report.posts > 0, "zipfian stream must contain posts");

    // Memory bound: no feed ever holds more than its ring capacity, even
    // the celebrity feeds that absorb most of the skewed post volume.
    for feed in &world.feeds {
        let len = session
            .call_readonly(*feed, "len", args![])
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(
            (0..=config.feed_capacity as i64).contains(&len),
            "feed overflowed its capacity bound: {len}"
        );
    }
    assert_deployment_sane(deployment, &config);
}

#[test]
fn social_smoke_on_runtime() {
    let runtime = AeonRuntime::builder()
        .servers(3)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    smoke_scenario(&runtime);
    runtime.shutdown();
}

#[test]
fn social_smoke_on_cluster() {
    let cluster = Cluster::builder()
        .servers(3)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    smoke_scenario(&cluster);
    cluster.shutdown();
}

#[test]
fn social_smoke_on_sim() {
    let sim = SimDeployment::builder()
        .servers(3)
        .contention(2)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    smoke_scenario(&sim);
    assert!(sim.virtual_now() > aeon_types::SimTime::ZERO);
}

/// ≥ 10⁶ live contexts on the runtime backend: 8 regions, 500 000 users,
/// and 500 000 feeds.  Follower fan-out is disabled at this scale (the
/// knob exists precisely so the graph generator stays linear); the
/// directory, placement, metrics, and feed memory bound are asserted
/// exactly as at smoke size.
#[test]
fn social_full_scale_million_contexts() {
    if std::env::var("AEON_SOCIAL_SCALE").is_err() {
        eprintln!("social_full_scale_million_contexts: skipped (set AEON_SOCIAL_SCALE=1)");
        return;
    }
    let config = SocialConfig {
        regions: 8,
        users: 500_000,
        chain_depth: 16,
        follows_per_user: 0,
        zipf_s: 1.1,
        feed_capacity: 8,
        seed: chaos_seed(),
    };
    assert!(config.total_contexts() >= 1_000_000);
    let runtime = AeonRuntime::builder()
        .servers(4)
        .class_graph(social_class_graph())
        .build()
        .unwrap();
    let world = deploy_social(&runtime, &config).unwrap();
    assert_deployment_sane(&runtime, &config);

    // A bounded skewed stream over the million-context graph; the feeds it
    // hits must respect the ring capacity.
    let ops = generate_plan(&config).request_stream(2_000, config.seed);
    let session = runtime.client();
    let report = run_social_stream(&session, &world, &ops).unwrap();
    assert_eq!((report.posts + report.reads) as usize, ops.len());
    for feed in world.feeds.iter().step_by(10_000) {
        let len = session
            .call_readonly(*feed, "len", args![])
            .unwrap()
            .as_i64()
            .unwrap();
        assert!((0..=config.feed_capacity as i64).contains(&len));
    }
    assert_deployment_sane(&runtime, &config);
    runtime.shutdown();
}

/// Deterministic-replay regression: the same seed must produce bitwise
/// identical histories (and identical virtual clocks) across two
/// independent simulator runs.  Catches hidden nondeterminism — iteration
/// over unordered maps, ambient randomness, wall-clock leakage — anywhere
/// in the virtual-time engine or the workload generator.
#[test]
fn social_replay_is_deterministic_in_sim() {
    let run = || {
        let sim = SimDeployment::builder()
            .servers(3)
            .contention(2)
            .class_graph(social_class_graph())
            .build()
            .unwrap();
        register_social_factories(&sim);
        let recorder = HistoryRecorder::new();
        sim.install_history_sink(Arc::new(recorder.clone()));
        let config = smoke_config();
        let world = deploy_social(&sim, &config).unwrap();
        let ops = generate_plan(&config).request_stream(300, config.seed);
        let session = sim.client();
        run_social_stream(&session, &world, &ops).unwrap();
        (recorder.history(), sim.virtual_now())
    };
    let (history_a, clock_a) = run();
    let (history_b, clock_b) = run();
    assert!(history_a.operation_count() > 0);
    assert_eq!(clock_a, clock_b, "virtual clocks diverged between replays");
    assert_eq!(history_a, history_b, "replay produced a different history");
}
