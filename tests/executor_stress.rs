//! Stress and regression tests for the sharded worker-pool executor:
//! offered concurrency far above the pool size, sub-event chains deeper
//! than the pool, event-lifecycle accounting (the in-flight gauge spans
//! the whole causal chain), and panicking contextclass methods resolving
//! handles with a proper error on both execution backends.

use aeon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Polls `condition` until it holds or the deadline passes.
fn eventually(what: &str, timeout: Duration, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A context that counts invocations and chains sub-events to itself:
/// `chain(hops)` dispatches `chain(hops - 1)` until `hops` reaches zero.
/// The causal chain is strictly sequential, so it exercises depth (not
/// width) on a bounded pool.
#[derive(Default)]
struct ChainContext {
    invocations: i64,
}

impl ContextObject for ChainContext {
    fn class_name(&self) -> &str {
        "Chain"
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "chain" => {
                self.invocations += 1;
                // A small dwell per hop keeps the causal chain observable
                // from outside (the gauge tests sample it concurrently).
                std::thread::sleep(Duration::from_micros(500));
                let hops = args.get_i64(0)?;
                if hops > 0 {
                    inv.dispatch_event(inv.self_id(), "chain", args![hops - 1])?;
                }
                Ok(Value::from(self.invocations))
            }
            "count" => Ok(Value::from(self.invocations)),
            _ => Err(AeonError::UnknownMethod {
                class: "Chain".into(),
                method: method.into(),
            }),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "count"
    }
}

/// A context whose `block` method parks on a test-held mutex, and whose
/// `spawn_block` method dispatches `block` as a sub-event.
struct GateContext {
    gate: Arc<StdMutex<()>>,
}

impl ContextObject for GateContext {
    fn class_name(&self) -> &str {
        "Gate"
    }

    fn handle(&mut self, method: &str, _args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "block" => {
                let _held = self.gate.lock().unwrap();
                Ok(Value::Null)
            }
            "spawn_block" => {
                inv.dispatch_event(inv.self_id(), "block", args![])?;
                Ok(Value::Null)
            }
            _ => Err(AeonError::UnknownMethod {
                class: "Gate".into(),
                method: method.into(),
            }),
        }
    }
}

/// A context with a deliberately panicking method.
struct PanickyContext;

impl ContextObject for PanickyContext {
    fn class_name(&self) -> &str {
        "Panicky"
    }

    fn handle(&mut self, method: &str, _args: &Args, _inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "boom" => panic!("deliberate test panic"),
            "ok" => Ok(Value::from(1i64)),
            _ => Err(AeonError::UnknownMethod {
                class: "Panicky".into(),
                method: method.into(),
            }),
        }
    }
}

/// A context that fans a call out to every child handed to `set_children`.
struct FanoutContext {
    children: Vec<ContextId>,
}

impl ContextObject for FanoutContext {
    fn class_name(&self) -> &str {
        "Fanout"
    }

    fn handle(&mut self, method: &str, args: &Args, inv: &mut Invocation<'_>) -> Result<Value> {
        match method {
            "set_children" => {
                self.children = (0..args.len())
                    .map(|i| args.get_context(i))
                    .collect::<Result<_>>()?;
                Ok(Value::Null)
            }
            "fanout" => {
                let mut total = 0i64;
                for child in self.children.clone() {
                    total += inv
                        .call(child, "incr", args!["n", 1])?
                        .as_i64()
                        .unwrap_or(0);
                }
                Ok(Value::from(total))
            }
            _ => Err(AeonError::UnknownMethod {
                class: "Fanout".into(),
                method: method.into(),
            }),
        }
    }
}

#[test]
fn runtime_pool_smaller_than_offered_concurrency() {
    let contexts = 32usize;
    let events_per_context = 16usize;
    let runtime = AeonRuntime::builder()
        .servers(2)
        .worker_threads(4)
        .build()
        .unwrap();
    let targets: Vec<ContextId> = (0..contexts)
        .map(|_| {
            runtime
                .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
                .unwrap()
        })
        .collect();
    let client = runtime.client();
    let mut handles = Vec::new();
    for _ in 0..events_per_context {
        for target in &targets {
            handles.push(client.submit_event(*target, "incr", args!["n", 1]).unwrap());
        }
    }
    assert_eq!(handles.len(), contexts * events_per_context);
    for handle in handles {
        handle.wait().unwrap();
    }
    for target in &targets {
        let n = client
            .submit_readonly_event(*target, "get", args!["n"])
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(n, Value::from(events_per_context as i64));
    }
    eventually(
        "in-flight gauge returns to zero",
        Duration::from_secs(5),
        || runtime.events_in_flight() == 0,
    );
    eventually("all tasks counted", Duration::from_secs(5), || {
        let stats = runtime.executor_stats();
        stats.completed == stats.submitted && stats.queued == 0
    });
    let stats = runtime.executor_stats();
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.panics, 0);
    runtime.shutdown();
}

#[test]
fn runtime_sub_event_chain_deeper_than_pool() {
    let depth = 64i64;
    let runtime = AeonRuntime::builder().worker_threads(2).build().unwrap();
    let chain = runtime
        .create_context(Box::new(ChainContext::default()), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    // The handle resolves only once the creator event finished; the
    // runtime executes the dispatched chain inline afterwards, so poll the
    // counter for completion of the whole causal chain.
    client
        .submit_event(chain, "chain", args![depth])
        .unwrap()
        .wait()
        .unwrap();
    eventually("sub-event chain completes", Duration::from_secs(30), || {
        let count = client
            .submit_readonly_event(chain, "count", args![])
            .unwrap()
            .wait()
            .unwrap();
        count == Value::from(depth + 1)
    });
    eventually(
        "in-flight gauge returns to zero",
        Duration::from_secs(5),
        || runtime.events_in_flight() == 0,
    );
    runtime.shutdown();
}

#[test]
fn in_flight_gauge_spans_the_whole_causal_chain() {
    let gate = Arc::new(StdMutex::new(()));
    let runtime = AeonRuntime::builder().worker_threads(2).build().unwrap();
    let ctx = runtime
        .create_context(
            Box::new(GateContext {
                gate: Arc::clone(&gate),
            }),
            Placement::Auto,
        )
        .unwrap();
    let client = runtime.client();
    let held = gate.lock().unwrap();
    let handle = client.submit_event(ctx, "spawn_block", args![]).unwrap();
    // While the sub-event is parked on the gate, the gauge must count BOTH
    // the creator (its causal chain is not done) and the sub-event.  The
    // old accounting decremented the creator before its sub-events ran and
    // reported 1 here.
    eventually(
        "gauge counts creator + blocked sub-event",
        Duration::from_secs(10),
        || runtime.events_in_flight() == 2,
    );
    drop(held);
    handle.wait().unwrap();
    eventually(
        "in-flight gauge returns to zero",
        Duration::from_secs(5),
        || runtime.events_in_flight() == 0,
    );
    runtime.shutdown();
}

#[test]
fn panicking_method_resolves_runtime_handle_with_error() {
    let runtime = AeonRuntime::builder().worker_threads(2).build().unwrap();
    let ctx = runtime
        .create_context(Box::new(PanickyContext), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    let failed = runtime.stats().events_failed();
    let err = client
        .submit_event(ctx, "boom", args![])
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(
        matches!(err, AeonError::Panicked { ref reason } if reason.contains("deliberate")),
        "expected a Panicked error, got: {err:?}"
    );
    assert_eq!(runtime.stats().events_failed(), failed + 1);
    // The context lock was released by the unwind path: the context stays
    // usable and the pool worker survived.
    let ok = client
        .submit_event(ctx, "ok", args![])
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(ok, Value::from(1i64));
    assert_eq!(runtime.events_in_flight(), 0);
    runtime.shutdown();
}

#[test]
fn panicking_method_resolves_cluster_handle_with_error() {
    let cluster = Cluster::builder()
        .servers(2)
        .worker_threads(2)
        .build()
        .unwrap();
    let ctx = cluster
        .create_context(Box::new(PanickyContext), Placement::Auto)
        .unwrap();
    let client = cluster.client();
    let err = client
        .submit_event(ctx, "boom", args![])
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(
        matches!(err, AeonError::Panicked { ref reason } if reason.contains("deliberate")),
        "expected a Panicked error, got: {err:?}"
    );
    // Locks were released and the node's pool survived the panic.
    let ok = client
        .submit_event(ctx, "ok", args![])
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(ok, Value::from(1i64));
    cluster.shutdown();
}

#[test]
fn cluster_pool_smaller_than_offered_concurrency() {
    // 8 fanout roots spread over 2 nodes, children deliberately placed on
    // the *other* node so every fanout blocks its worker on remote calls;
    // 2 resident workers per node << 64 offered events, so progress
    // depends on queueing plus the spill escape hatch.
    let callers = 8usize;
    let children_per_caller = 2usize;
    let rounds = 8usize;
    let cluster = Cluster::builder()
        .servers(2)
        .worker_threads(2)
        .build()
        .unwrap();
    let servers = cluster.servers();
    let mut roots = Vec::new();
    for i in 0..callers {
        let home = servers[i % servers.len()];
        let away = servers[(i + 1) % servers.len()];
        let caller = cluster
            .create_context(
                Box::new(FanoutContext {
                    children: Vec::new(),
                }),
                Placement::Server(home),
            )
            .unwrap();
        let mut child_args = Vec::new();
        for _ in 0..children_per_caller {
            let child = cluster
                .create_context(Box::new(KvContext::new("Item")), Placement::Server(away))
                .unwrap();
            cluster.add_ownership(caller, child).unwrap();
            child_args.push(Value::from(child));
        }
        let client = cluster.client();
        client
            .submit_event(caller, "set_children", Args::from(child_args))
            .unwrap()
            .wait()
            .unwrap();
        roots.push(caller);
    }
    let client = cluster.client();
    let mut handles = Vec::new();
    for _ in 0..rounds {
        for caller in &roots {
            handles.push(client.submit_event(*caller, "fanout", args![]).unwrap());
        }
    }
    assert_eq!(handles.len(), callers * rounds);
    for handle in handles {
        handle.wait().unwrap();
    }
    // Every child was incremented once per round by its caller.
    for caller in &roots {
        let total = client
            .submit_event(*caller, "fanout", args![])
            .unwrap()
            .wait()
            .unwrap()
            .as_i64()
            .unwrap();
        // The verification fanout itself increments once more.
        assert_eq!(total as usize, children_per_caller * (rounds + 1));
    }
    // Completion counters trail the Done messages by a hair; poll briefly.
    eventually("all node tasks counted", Duration::from_secs(5), || {
        cluster
            .executor_stats()
            .values()
            .all(|stat| stat.completed == stat.submitted && stat.queued == 0)
    });
    let stats = cluster.executor_stats();
    assert_eq!(stats.len(), 2);
    for stat in stats.values() {
        assert_eq!(stat.panics, 0);
    }
    // The install-wait retry gauge is wired through (zero here: no
    // migrations raced this run).
    assert_eq!(cluster.install_wait_retries().len(), 2);
    cluster.shutdown();
}

#[test]
fn cluster_sub_event_chain_deeper_than_pool() {
    let depth = 32i64;
    let cluster = Cluster::builder()
        .servers(2)
        .worker_threads(2)
        .build()
        .unwrap();
    let chain = cluster
        .create_context(Box::new(ChainContext::default()), Placement::Auto)
        .unwrap();
    let client = cluster.client();
    client
        .submit_event(chain, "chain", args![depth])
        .unwrap()
        .wait()
        .unwrap();
    // Sub-events are resubmitted through the gateway after each creator
    // completes; poll until the whole chain has executed.
    eventually("sub-event chain completes", Duration::from_secs(60), || {
        client
            .submit_readonly_event(chain, "count", args![])
            .unwrap()
            .wait()
            .unwrap()
            == Value::from(depth + 1)
    });
    cluster.shutdown();
}

#[test]
fn no_thread_is_spawned_per_event() {
    // Submitting far more events than the pool size must not grow the
    // completed-task count past the submissions (each event is exactly one
    // pool task) and must reuse the fixed worker set: the executor stats
    // expose that directly.
    let runtime = AeonRuntime::builder().worker_threads(3).build().unwrap();
    let ctx = runtime
        .create_context(Box::new(KvContext::new("Counter")), Placement::Auto)
        .unwrap();
    let client = runtime.client();
    let events = 200u64;
    let mut handles = Vec::new();
    for _ in 0..events {
        handles.push(client.submit_event(ctx, "incr", args!["n", 1]).unwrap());
    }
    for handle in handles {
        handle.wait().unwrap();
    }
    // The completion counter trails the handle resolution by a hair (the
    // worker bumps it after sending the outcome); poll briefly.
    eventually("all tasks counted", Duration::from_secs(5), || {
        runtime.executor_stats().completed == events
    });
    let stats = runtime.executor_stats();
    assert_eq!(stats.workers, 3);
    assert_eq!(stats.submitted, events);
    runtime.shutdown();
}

/// Many concurrent writers mixed with the in-flight gauge: a sampler
/// thread watches the gauge while a burst of gated chains executes and
/// verifies it only ever decays to zero after every chain finished.
#[test]
fn gauge_under_concurrent_chains_returns_to_zero_only_at_the_end() {
    let runtime = AeonRuntime::builder().worker_threads(4).build().unwrap();
    let client = runtime.client();
    let chains: Vec<ContextId> = (0..8)
        .map(|_| {
            runtime
                .create_context(Box::new(ChainContext::default()), Placement::Auto)
                .unwrap()
        })
        .collect();
    let depth = 16i64;
    let handles: Vec<_> = chains
        .iter()
        .map(|c| client.submit_event(*c, "chain", args![depth]).unwrap())
        .collect();
    let peak = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicU64::new(0));
    let sampler = {
        let runtime = runtime.clone();
        let peak = Arc::clone(&peak);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while stop.load(Ordering::SeqCst) == 0 {
                peak.fetch_max(runtime.events_in_flight(), Ordering::SeqCst);
                std::thread::yield_now();
            }
        })
    };
    for handle in handles {
        handle.wait().unwrap();
    }
    for chain in &chains {
        eventually("chain completes", Duration::from_secs(30), || {
            client
                .submit_readonly_event(*chain, "count", args![])
                .unwrap()
                .wait()
                .unwrap()
                == Value::from(depth + 1)
        });
    }
    stop.store(1, Ordering::SeqCst);
    sampler.join().unwrap();
    assert!(peak.load(Ordering::SeqCst) >= 2, "gauge never saw overlap");
    eventually(
        "in-flight gauge returns to zero",
        Duration::from_secs(5),
        || runtime.events_in_flight() == 0,
    );
    runtime.shutdown();
}
