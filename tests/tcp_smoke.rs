//! Multi-process smoke test: a cluster of real `aeon-node` OS processes.
//!
//! Spawns three `aeon-node` binaries on loopback, attaches a gateway
//! `Cluster` over `ClusterTransport::TcpMesh`, runs a short workload that
//! exercises the wire (hosting, events, migration, snapshot/restore), and
//! asserts every process exits cleanly on shutdown.

use aeon::cluster::{Cluster, ClusterTransport};
use aeon::prelude::*;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command};
use std::sync::Arc;

/// Reserves distinct ephemeral loopback ports.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn spawn_nodes(
    gateway: SocketAddr,
    peers: &BTreeMap<ServerId, SocketAddr>,
) -> Vec<(ServerId, Child)> {
    let exe = env!("CARGO_BIN_EXE_aeon-node");
    peers
        .iter()
        .map(|(id, addr)| {
            let mut command = Command::new(exe);
            command
                .arg("--id")
                .arg(id.raw().to_string())
                .arg("--listen")
                .arg(addr.to_string())
                .arg("--gateway")
                .arg(gateway.to_string());
            for (peer, peer_addr) in peers {
                if peer != id {
                    command
                        .arg("--peer")
                        .arg(format!("{}={}", peer.raw(), peer_addr));
                }
            }
            (*id, command.spawn().expect("spawn aeon-node"))
        })
        .collect()
}

#[test]
fn three_process_cluster_runs_a_workload_and_shuts_down_cleanly() {
    let addrs = free_addrs(4);
    let gateway_addr = addrs[0];
    let peers: BTreeMap<ServerId, SocketAddr> = (0..3u32)
        .map(|i| (ServerId::new(i), addrs[i as usize + 1]))
        .collect();
    let children = spawn_nodes(gateway_addr, &peers);

    let cluster = Cluster::builder()
        .transport(ClusterTransport::TcpMesh {
            listen: gateway_addr,
            peers: peers.clone(),
        })
        .build()
        .expect("gateway binds");
    let servers = cluster.servers();
    assert_eq!(servers.len(), 3);

    // The gateway-side factory is needed to rebuild objects for restore.
    cluster.register_class_factory(
        "Item",
        Arc::new(|state: &Value| {
            let mut kv = KvContext::new("Item");
            ContextObject::restore(&mut kv, state);
            Box::new(kv) as Box<dyn ContextObject>
        }),
    );

    // Host one context per process, drive events through each.
    let client = cluster.client();
    let items: Vec<ContextId> = servers
        .iter()
        .map(|server| {
            cluster
                .create_context(Box::new(KvContext::new("Item")), Placement::Server(*server))
                .expect("host context on node process")
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        client.call(*item, "set", args!["n", i as i64]).unwrap();
    }
    for (i, item) in items.iter().enumerate() {
        assert_eq!(
            client.call_readonly(*item, "get", args!["n"]).unwrap(),
            Value::from(i as i64)
        );
    }

    // State crosses process boundaries: migrate, then snapshot/restore.
    let moved = cluster.migrate_context(items[0], servers[1]).unwrap();
    assert!(moved > 0, "migration serialised state over the wire");
    assert_eq!(
        client.call_readonly(items[0], "get", args!["n"]).unwrap(),
        Value::from(0i64)
    );
    let snapshot = cluster.snapshot_context(items[1]).unwrap();
    client.call(items[1], "set", args!["n", 99i64]).unwrap();
    cluster.restore_snapshot(&snapshot).unwrap();
    assert_eq!(
        client.call_readonly(items[1], "get", args!["n"]).unwrap(),
        Value::from(1i64)
    );

    // Bytes actually moved through sockets.
    let stats = cluster.network_stats();
    assert!(stats.bytes_sent() > 0, "gateway sent bytes over TCP");
    assert!(
        stats.bytes_received() > 0,
        "gateway received bytes over TCP"
    );

    cluster.shutdown();
    for (id, mut child) in children {
        let status = child.wait().expect("node process exit status");
        assert!(status.success(), "node {id} exited with {status}");
    }
}
