//! End-to-end smoke test for the `aeond` service binary.
//!
//! Spawns a real `aeond` OS process with a temporary TOML config (cluster
//! backend, OS-assigned admin port, built-in workload), discovers the
//! admin address from the line the binary prints on stdout, then drives
//! the whole operability surface over plain HTTP/1.0: `/healthz`,
//! `/readyz`, `/metrics` (asserting the workload moved the counters and
//! the latency histogram is well-formed), and finally `/drain`, asserting
//! the process exits 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

struct Response {
    status: u16,
    body: String,
}

/// One HTTP/1.0 request over a fresh connection.
fn http_get(addr: &str, path: &str) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: aeond\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok(Response { status, body })
}

/// Polls `path` until it answers 200 or the deadline passes.
fn await_ok(addr: &str, path: &str, deadline: Duration) -> Response {
    let start = Instant::now();
    loop {
        if let Ok(response) = http_get(addr, path) {
            if response.status == 200 {
                return response;
            }
        }
        assert!(
            start.elapsed() < deadline,
            "{path} did not answer 200 within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Extracts the value of an unlabelled sample, e.g. `aeon_up 1`.
fn sample_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let (sample, value) = line.split_once(' ')?;
        (sample == name).then(|| value.trim().parse().ok())?
    })
}

#[test]
fn aeond_serves_probes_metrics_and_drains_cleanly() {
    let dir = std::env::temp_dir().join(format!("aeond-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let config_path = dir.join("aeond.toml");
    std::fs::write(
        &config_path,
        r#"
            [deployment]
            backend = "cluster"
            servers = 2
            worker_threads = 2

            [admin]
            listen = "127.0.0.1:0"
            push_interval_ms = 100

            [workload]
            contexts = 4
            events = 25
        "#,
    )
    .expect("write config");

    let mut child = Command::new(env!("CARGO_BIN_EXE_aeond"))
        .arg("--config")
        .arg(&config_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn aeond");

    // The first stdout line announces the bound admin address.
    let stdout = child.stdout.take().expect("captured stdout");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read startup banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .map(str::trim)
        .expect("address in startup banner")
        .to_string();
    assert!(
        addr.parse::<std::net::SocketAddr>().is_ok(),
        "unparseable admin address in banner: {banner:?}"
    );

    assert_eq!(http_get(&addr, "/healthz").expect("healthz").status, 200);
    await_ok(&addr, "/readyz", Duration::from_secs(30));
    assert_eq!(
        http_get(&addr, "/nonsense").expect("unknown path").status,
        404
    );

    // Wait for the push timer to publish an exposition where the workload's
    // events are visible, then sanity-check its shape.
    let deadline = Instant::now() + Duration::from_secs(30);
    let exposition = loop {
        let response = http_get(&addr, "/metrics").expect("metrics");
        assert_eq!(response.status, 200);
        let submitted = sample_value(&response.body, "aeon_executor_submitted_total");
        if submitted.is_some_and(|v| v > 0.0) {
            break response.body;
        }
        assert!(
            Instant::now() < deadline,
            "workload events never reached the exposition:\n{}",
            response.body
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(sample_value(&exposition, "aeon_up"), Some(1.0));
    assert_eq!(sample_value(&exposition, "aeon_servers"), Some(2.0));
    assert!(
        sample_value(&exposition, "aeon_contexts_total").is_some_and(|v| v >= 4.0),
        "workload contexts missing from exposition"
    );
    assert!(
        exposition.contains("# TYPE aeon_event_latency_micros histogram"),
        "latency histogram family missing"
    );
    assert!(
        exposition.contains(r#"aeon_event_latency_micros_bucket{server="0",le="+Inf"}"#),
        "histogram +Inf bucket missing"
    );
    assert!(
        exposition.contains("aeon_network_messages_total"),
        "cluster network counters missing"
    );

    // Graceful drain: 200, then a clean exit.
    let drain = http_get(&addr, "/drain").expect("drain");
    assert_eq!(drain.status, 200, "drain body: {}", drain.body);
    let status = child.wait().expect("wait for aeond");
    assert!(status.success(), "aeond exited with {status}");

    std::fs::remove_dir_all(&dir).ok();
}
