//! Checker-driven chaos suite: the paper's strict-serializability claim,
//! verified against *real* cluster executions under fault injection.
//!
//! A randomized concurrent bank workload (transfers + read-only audits)
//! hammers a multi-server cluster while the chaos driver injects
//! coordinated snapshots, snapshot restores, context migrations, a server
//! crash recovered from the last checkpoint, and scale-out — all mid-run.
//! Every event span and context access is recorded through the deployment's
//! history sink (`aeon_checker::HistoryRecorder`), and the recorded history
//! must pass `check_strict_serializability`.
//!
//! The suite also proves its own teeth: with the test-only
//! `ClusterBuilder::torn_snapshot_for_tests` toggle (reverting
//! `snapshot_context` to the legacy member-at-a-time capture), the same
//! workload produces a snapshot event whose member reads interleave with a
//! transfer — a conflict cycle the checker rejects.
//!
//! Runs are seeded (`AEON_CHAOS_SEED`) so failures are reproducible; CI
//! runs this file in release mode under a timeout.

use aeon::prelude::*;
use aeon_apps::bank::{
    bank_class_graph, captured_account_total, deploy_bank, register_bank_factories, BankWorld,
    BankWorldConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const DEFAULT_SEED: u64 = 20260729;
/// Transfers/audits submitted by each client thread per run.
const OPS_PER_CLIENT: usize = 150;
const CLIENTS: usize = 4;

fn chaos_seed() -> u64 {
    std::env::var("AEON_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn chaos_config() -> BankWorldConfig {
    BankWorldConfig {
        branches: 4,
        accounts_per_branch: 3,
        shared_pairs: 1,
        shared_accounts: 1,
        initial_balance: 100,
    }
}

/// Spawns the client threads: each submits a seeded random stream of
/// transfers and audits, tolerating errors (fault injection makes some
/// events fail), and pausing while the driver performs a crash.
fn spawn_clients(
    cluster: &Cluster,
    world: &BankWorld,
    seed: u64,
    stop: &Arc<AtomicBool>,
    pause: &Arc<AtomicBool>,
) -> Vec<thread::JoinHandle<usize>> {
    (0..CLIENTS)
        .map(|c| {
            let session = cluster.client();
            let world = world.clone();
            let stop = Arc::clone(stop);
            let pause = Arc::clone(pause);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64 + 1) << 32));
                let mut submitted = 0usize;
                while submitted < OPS_PER_CLIENT && !stop.load(Ordering::SeqCst) {
                    if pause.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    let b = rng.gen_range(0..world.branches.len());
                    let accounts = &world.accounts_of[b];
                    let from = accounts[rng.gen_range(0..accounts.len())];
                    let to = accounts[rng.gen_range(0..accounts.len())];
                    let amount = rng.gen_range(1..10i64);
                    let outcome = if rng.gen_range(0..12) == 0 {
                        session
                            .submit_readonly_event(world.bank, "audit", args![])
                            .and_then(|h| h.wait())
                    } else {
                        session
                            .submit_event(world.branches[b], "transfer", args![from, to, amount])
                            .and_then(|h| h.wait())
                    };
                    // Errors are expected under fault injection (crashed
                    // members, in-flight migrations); the order-level check
                    // at the end is what matters.
                    let _ = outcome;
                    submitted += 1;
                }
                submitted
            })
        })
        .collect()
}

/// Crashes one server and recovers the cluster from `checkpoint`: the lost
/// contexts are re-hosted from the checkpointed state (a `Null` state for
/// contexts the snapshot skipped), then the whole subtree is rewound to the
/// checkpoint so the recovered system is a consistent cut — which keeps the
/// conservation invariant intact for later snapshots.
fn crash_and_recover(cluster: &Cluster, checkpoint: &Snapshot, pause: &Arc<AtomicBool>) {
    pause.store(true, Ordering::SeqCst);
    // Clients are synchronous; once they observe the pause flag their last
    // event has completed, so this drain leaves (almost) nothing in flight.
    thread::sleep(Duration::from_millis(300));
    let servers = cluster.servers();
    if servers.len() < 2 {
        pause.store(false, Ordering::SeqCst);
        return;
    }
    // Never crash the server hosting the bank root's sequencer-bearing
    // subtree entry point is fine too, but picking the last server keeps
    // the choice deterministic.
    let victim = *servers.last().unwrap();
    let survivor = servers[0];
    let lost = cluster.contexts_on(victim);
    cluster.crash_server(victim).unwrap();
    for context in lost {
        let state = checkpoint
            .get(context)
            .map(|e| e.state.clone())
            .unwrap_or(Value::Null);
        cluster
            .restore_context(context, &state, survivor)
            .expect("re-hosting a checkpointed context succeeds");
    }
    cluster
        .restore_snapshot(checkpoint)
        .expect("rewinding to the checkpoint succeeds");
    // Scale back out so later migrations have somewhere to go.
    let _ = cluster.add_server();
    pause.store(false, Ordering::SeqCst);
}

/// One full chaos run; returns the recorded history.
fn run_chaos(seed: u64, torn: bool, transport: ClusterTransport) -> History {
    let cluster = Cluster::builder()
        .servers(3)
        .class_graph(bank_class_graph())
        .transport(transport)
        .torn_snapshot_for_tests(torn)
        .build()
        .unwrap();
    register_bank_factories(&cluster);
    let recorder = HistoryRecorder::new();
    cluster.install_history_sink(Arc::new(recorder.clone()));
    let config = chaos_config();
    let world = deploy_bank(&cluster, &config).unwrap();
    let expected = world.expected_total(&config);

    let stop = Arc::new(AtomicBool::new(false));
    let pause = Arc::new(AtomicBool::new(false));
    let clients = spawn_clients(&cluster, &world, seed, &stop, &pause);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut checkpoint: Option<Snapshot> = None;
    let mut crashed = false;
    while clients.iter().any(|c| !c.is_finished()) {
        thread::sleep(Duration::from_millis(20));
        let action = if torn { 0 } else { rng.gen_range(0..8) };
        match action {
            // Coordinated snapshot mid-load: in freeze mode the captured
            // cut must conserve the total balance — the crash-consistency
            // claim itself.  (Snapshots may fail transiently when they race
            // a migration; that is fine, consistency of successful cuts is
            // what is asserted.)
            0..=3 => {
                if let Ok(snapshot) = cluster.snapshot_context(world.bank) {
                    if !torn && !crashed {
                        assert_eq!(
                            captured_account_total(&snapshot),
                            expected,
                            "frozen snapshot cut is torn (seed {seed})"
                        );
                    }
                    checkpoint = Some(snapshot);
                }
            }
            // Rewind the live system to the last checkpoint mid-load.
            4 => {
                if let Some(snapshot) = &checkpoint {
                    let _ = cluster.restore_snapshot(snapshot);
                }
            }
            // Migrate a random account to a random server.
            5 | 6 => {
                let account = world.accounts[rng.gen_range(0..world.accounts.len())];
                let servers = cluster.servers();
                let target = servers[rng.gen_range(0..servers.len())];
                let _ = cluster.migrate_context(account, target);
            }
            // Crash a server once and recover it from the checkpoint.
            _ => {
                if !crashed {
                    if let Some(snapshot) = checkpoint.clone() {
                        crash_and_recover(&cluster, &snapshot, &pause);
                        crashed = true;
                    }
                }
            }
        }
    }
    stop.store(true, Ordering::SeqCst);
    let submitted: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(submitted, CLIENTS * OPS_PER_CLIENT);
    cluster.shutdown();
    recorder.history()
}

#[test]
fn chaos_cluster_history_is_strictly_serializable() {
    let seed = chaos_seed();
    for round in 0..2u64 {
        let history = run_chaos(seed.wrapping_add(round), false, ClusterTransport::default());
        assert!(
            history.operation_count() >= 1_000,
            "expected a >=1k-op history, got {} (seed {seed}, round {round})",
            history.operation_count()
        );
        if let Err(violation) = check_strict_serializability(&history) {
            panic!("seed {seed} round {round}: {violation}");
        }
    }
}

/// The same chaos workload over the real wire path: every inter-server hop
/// crosses the TCP loopback transport, so the serializability guarantee the
/// static analyzer certifies at deploy time is exercised end to end on the
/// transport a production cluster would use.
#[test]
fn chaos_cluster_history_is_strictly_serializable_over_tcp_loopback() {
    let seed = chaos_seed().wrapping_add(0x7c9);
    let history = run_chaos(seed, false, ClusterTransport::TcpLoopback);
    assert!(
        history.operation_count() >= 1_000,
        "expected a >=1k-op history, got {} (seed {seed})",
        history.operation_count()
    );
    if let Err(violation) = check_strict_serializability(&history) {
        panic!("tcp-loopback seed {seed}: {violation}");
    }
}

#[test]
fn torn_member_at_a_time_snapshot_is_caught_by_the_checker() {
    let seed = chaos_seed().wrapping_add(0x7021);
    for attempt in 0..3u64 {
        let history = run_chaos(
            seed.wrapping_add(attempt),
            true,
            ClusterTransport::default(),
        );
        if check_strict_serializability(&history).is_err() {
            return;
        }
    }
    panic!("the member-at-a-time snapshot mode was never caught by the checker");
}

/// Satellite regression: a snapshot whose member's owner node crashed
/// mid-freeze must fail with a clean error and leave no stranded locks on
/// the surviving members.
#[test]
fn crashed_member_mid_freeze_fails_cleanly_and_thaws_survivors() {
    let cluster = Cluster::builder()
        .servers(3)
        .class_graph(bank_class_graph())
        .build()
        .unwrap();
    register_bank_factories(&cluster);
    let config = BankWorldConfig {
        branches: 3,
        accounts_per_branch: 2,
        shared_pairs: 0,
        shared_accounts: 0,
        initial_balance: 50,
    };
    let world = deploy_bank(&cluster, &config).unwrap();
    // Ownership co-location puts the whole tree next to the root; spread a
    // couple of members so the freeze really spans servers.
    let root_server = cluster.placement_of(world.bank).unwrap();
    let victim = cluster
        .servers()
        .into_iter()
        .find(|s| *s != root_server)
        .unwrap();
    cluster.migrate_context(world.accounts[0], victim).unwrap();
    cluster.migrate_context(world.accounts[1], victim).unwrap();
    let lost = cluster.contexts_on(victim);
    assert!(!lost.is_empty());
    cluster.crash_server(victim).unwrap();

    let err = cluster.snapshot_context(world.bank).unwrap_err();
    assert!(
        matches!(err, AeonError::SnapshotFailed { context, .. } if context == world.bank),
        "expected a clean SnapshotFailed, got: {err}"
    );

    // No stranded locks: every surviving member still accepts events.
    let session = cluster.client();
    for account in &world.accounts {
        if cluster.placement_of(*account).unwrap() == victim {
            continue;
        }
        assert_eq!(
            session
                .submit_event(*account, "add", args![1i64])
                .unwrap()
                .wait()
                .unwrap(),
            Value::from(51i64),
            "surviving account {account} is still usable after the failed freeze"
        );
    }

    // After re-hosting the lost members, the coordinated snapshot succeeds
    // and sees every account.
    for context in lost {
        cluster
            .restore_context(context, &Value::Null, root_server)
            .unwrap();
    }
    let snapshot = cluster.snapshot_context(world.bank).unwrap();
    let accounts_captured = snapshot
        .entries()
        .filter(|(_, e)| e.class == "Account")
        .count();
    assert_eq!(accounts_captured, world.accounts.len());
    cluster.shutdown();
}

/// Drives transfers + certified read-only bursts while the main thread
/// takes coordinated snapshots, and returns the recorded history plus the
/// number of completed fast-path-eligible reads.
///
/// The certified fast path (`Account::read` is `ro` with a `calls []`
/// summary) skips dominator sequencing, so a burst of fast reads racing a
/// snapshot freeze is the adversarial case for the certification argument:
/// frozen cuts must still conserve the total balance and the full history
/// must stay strictly serializable.
fn fast_path_mid_snapshot_scenario(deployment: &dyn Deployment, seed: u64) -> (History, usize) {
    let recorder = HistoryRecorder::new();
    deployment.install_history_sink(Arc::new(recorder.clone()));
    let config = chaos_config();
    let world = deploy_bank(deployment, &config).unwrap();
    let expected = world.expected_total(&config);
    let stop = Arc::new(AtomicBool::new(false));

    let reads = thread::scope(|scope| {
        // Writers keep the accounts hot with conflicting transfers.
        let mut writers = Vec::new();
        for c in 0..2u64 {
            let session = deployment.session();
            let world = world.clone();
            let stop = Arc::clone(&stop);
            writers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (c + 1));
                while !stop.load(Ordering::SeqCst) {
                    let b = rng.gen_range(0..world.branches.len());
                    let accounts = &world.accounts_of[b];
                    let from = accounts[rng.gen_range(0..accounts.len())];
                    let to = accounts[rng.gen_range(0..accounts.len())];
                    let _ = session
                        .submit_event(world.branches[b], "transfer", args![from, to, 1i64])
                        .and_then(|h| h.wait());
                }
            }));
        }
        // Readers hammer the certified read-only fast path.
        let mut readers = Vec::new();
        for c in 0..2u64 {
            let session = deployment.session();
            let world = world.clone();
            let stop = Arc::clone(&stop);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((c + 1) << 16));
                let mut reads = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let account = world.accounts[rng.gen_range(0..world.accounts.len())];
                    if session
                        .submit_readonly_event(account, "read", args![])
                        .and_then(|h| h.wait())
                        .is_ok()
                    {
                        reads += 1;
                    }
                }
                reads
            }));
        }
        // Coordinated snapshots mid-burst: every successful frozen cut must
        // conserve the total balance despite the unsequenced fast reads.
        let mut cuts = 0;
        while cuts < 6 {
            if let Ok(snapshot) = deployment.snapshot_context(world.bank) {
                assert_eq!(
                    captured_account_total(&snapshot),
                    expected,
                    "frozen cut torn under fast-path reads (seed {seed})"
                );
                cuts += 1;
            }
            thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::SeqCst);
        for writer in writers {
            writer.join().unwrap();
        }
        readers.into_iter().map(|r| r.join().unwrap()).sum()
    });
    (recorder.history(), reads)
}

#[test]
fn readonly_fast_path_burst_mid_snapshot_stays_strictly_serializable() {
    let seed = chaos_seed().wrapping_add(0x4e0);

    // Cluster leg (Channel transport): fast reads route as pre-sequenced
    // Exec messages straight to the target's server.
    let cluster = Cluster::builder()
        .servers(3)
        .class_graph(bank_class_graph())
        .build()
        .unwrap();
    register_bank_factories(&cluster);
    let (history, reads) = fast_path_mid_snapshot_scenario(&cluster, seed);
    assert!(
        cluster.fast_path_events() >= reads as u64,
        "every certified read takes the fast path ({} events, {reads} reads)",
        cluster.fast_path_events()
    );
    cluster.shutdown();
    assert!(history.operation_count() > 200);
    if let Err(violation) = check_strict_serializability(&history) {
        panic!("cluster fast-path burst, seed {seed}: {violation}");
    }

    // Runtime leg: fast reads run under a shared object lock without
    // dominator sequencing or exclusive activation.
    let runtime = AeonRuntime::builder()
        .servers(2)
        .class_graph(bank_class_graph())
        .build()
        .unwrap();
    let (history, reads) = fast_path_mid_snapshot_scenario(&runtime, seed ^ 0xa5);
    assert!(
        runtime.executor_stats().fast_path >= reads as u64,
        "every certified read takes the fast path ({} events, {reads} reads)",
        runtime.executor_stats().fast_path
    );
    runtime.shutdown();
    assert!(history.operation_count() > 200);
    if let Err(violation) = check_strict_serializability(&history) {
        panic!("runtime fast-path burst, seed {seed}: {violation}");
    }
}

// ---------------------------------------------------------------------------
// Hot-dominator migration under Zipfian load (the social workload)
// ---------------------------------------------------------------------------

/// Zipf-skewed social traffic hammers the celebrity users while the driver
/// live-migrates their dominators (regions, celebrities, celebrity feeds)
/// between servers.  Migration moves exactly the contexts whose sequencers
/// order most of the traffic, so any window where a sequencer's event
/// stream escapes its lock shows up as a precedence cycle.
fn run_social_migration_chaos(deployment: &dyn Deployment, seed: u64) -> History {
    use aeon_apps::social::{deploy_social, generate_plan, register_social_factories, SocialOp};

    register_social_factories(deployment);
    let recorder = HistoryRecorder::new();
    deployment.install_history_sink(Arc::new(recorder.clone()));
    let config = aeon_apps::SocialConfig {
        regions: 2,
        users: 24,
        chain_depth: 6,
        follows_per_user: 3,
        zipf_s: 1.3,
        feed_capacity: 8,
        seed,
    };
    let world = deploy_social(deployment, &config).unwrap();
    let plan = generate_plan(&config);
    let ops_per_client = 120usize;

    thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..CLIENTS {
            let session = deployment.session();
            let ops = plan.request_stream(ops_per_client, seed ^ ((c as u64 + 1) << 16));
            let world = &world;
            clients.push(scope.spawn(move || {
                let mut applied = 0usize;
                for op in &ops {
                    // Events racing a migration may fail transiently; the
                    // serializability of what *did* execute is the claim.
                    let outcome = match *op {
                        SocialOp::Post { user, payload } => {
                            session.call(world.users[user as usize], "post", args![payload])
                        }
                        SocialOp::Timeline { user } => {
                            session.call_readonly(world.users[user as usize], "timeline", args![])
                        }
                        SocialOp::FeedLen { user } => {
                            session.call_readonly(world.feeds[user as usize], "len", args![])
                        }
                    };
                    applied += usize::from(outcome.is_ok());
                }
                applied
            }));
        }

        // The chaos driver: keep migrating hot dominators while clients run.
        let hot = world.hot_dominators(4);
        let servers = deployment.servers();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut migrations = 0usize;
        while clients.iter().any(|c| !c.is_finished()) {
            thread::sleep(Duration::from_millis(5));
            let target = hot[rng.gen_range(0..hot.len())];
            let to = servers[rng.gen_range(0..servers.len())];
            migrations += usize::from(deployment.migrate_context(target, to).is_ok());
        }

        let applied: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(
            applied >= CLIENTS * ops_per_client / 2,
            "too few events survived migration chaos: {applied}"
        );
        assert!(migrations > 0, "the driver never migrated a hot dominator");
    });
    recorder.history()
}

#[test]
fn social_hot_dominator_migration_is_strictly_serializable() {
    let seed = chaos_seed();

    let runtime = AeonRuntime::builder()
        .servers(3)
        .class_graph(aeon_apps::social::social_class_graph())
        .build()
        .unwrap();
    let history = run_social_migration_chaos(&runtime, seed);
    runtime.shutdown();
    assert!(
        history.operation_count() >= 500,
        "expected a >=500-op history, got {} (seed {seed})",
        history.operation_count()
    );
    if let Err(violation) = check_strict_serializability(&history) {
        panic!("runtime social migration chaos, seed {seed}: {violation}");
    }

    let cluster = Cluster::builder()
        .servers(3)
        .class_graph(aeon_apps::social::social_class_graph())
        .build()
        .unwrap();
    let history = run_social_migration_chaos(&cluster, seed ^ 0x50c1a1);
    cluster.shutdown();
    assert!(
        history.operation_count() >= 500,
        "expected a >=500-op history, got {} (seed {seed})",
        history.operation_count()
    );
    if let Err(violation) = check_strict_serializability(&history) {
        panic!("cluster social migration chaos, seed {seed}: {violation}");
    }
}

/// Backend sanity for the recording surface itself: the deterministic
/// simulator records serial histories by construction, and the recorder's
/// adapter sees snapshot captures as reads and restores as writes.
#[test]
fn sim_backend_records_serial_histories_with_snapshot_events() {
    let sim = SimDeployment::builder()
        .servers(2)
        .class_graph(bank_class_graph())
        .build()
        .unwrap();
    let recorder = HistoryRecorder::new();
    Deployment::install_history_sink(&sim, Arc::new(recorder.clone()));
    let config = chaos_config();
    let world = deploy_bank(&sim, &config).unwrap();
    let session = Deployment::session(&sim);
    for i in 0..20i64 {
        let b = (i as usize) % world.branches.len();
        let accounts = &world.accounts_of[b];
        session
            .call(
                world.branches[b],
                "transfer",
                args![accounts[0], accounts[1], 1i64],
            )
            .unwrap();
    }
    let snapshot = sim.snapshot_context(world.bank).unwrap();
    sim.restore_snapshot(&snapshot).unwrap();
    let history = recorder.history();
    assert!(history.operation_count() > 60);
    check_strict_serializability(&history).expect("the inline engine is serial by construction");
    sim.shutdown();
}
